#include "runtime/Buffer.h"

#include <functional>
#include <sstream>

namespace c4cam::rt {

std::shared_ptr<Buffer>
Buffer::create()
{
    return std::make_shared<Buffer>(Private{});
}

std::shared_ptr<Buffer>
Buffer::alloc(DType dtype, std::vector<std::int64_t> shape)
{
    auto buf = create();
    buf->dtype_ = dtype;
    buf->shape_ = std::move(shape);
    buf->strides_.assign(buf->shape_.size(), 1);
    for (int i = static_cast<int>(buf->shape_.size()) - 2; i >= 0; --i)
        buf->strides_[i] = buf->strides_[i + 1] * buf->shape_[i + 1];
    buf->storage_ = std::make_shared<std::vector<double>>(
        static_cast<std::size_t>(buf->numElements()), 0.0);
    return buf;
}

std::shared_ptr<Buffer>
Buffer::fromMatrix(const std::vector<std::vector<float>> &rows)
{
    C4CAM_CHECK(!rows.empty(), "fromMatrix: empty data");
    auto buf = alloc(DType::F32,
                     {static_cast<std::int64_t>(rows.size()),
                      static_cast<std::int64_t>(rows[0].size())});
    for (std::size_t r = 0; r < rows.size(); ++r) {
        C4CAM_CHECK(rows[r].size() == rows[0].size(),
                    "fromMatrix: ragged rows");
        for (std::size_t c = 0; c < rows[r].size(); ++c)
            buf->set({static_cast<std::int64_t>(r),
                      static_cast<std::int64_t>(c)},
                     rows[r][c]);
    }
    return buf;
}

std::int64_t
Buffer::linearIndex(const std::vector<std::int64_t> &index) const
{
    C4CAM_ASSERT(index.size() == shape_.size(),
                 "index rank " << index.size() << " != buffer rank "
                 << shape_.size());
    std::int64_t linear = offset_;
    for (std::size_t i = 0; i < index.size(); ++i) {
        C4CAM_ASSERT(index[i] >= 0 && index[i] < shape_[i],
                     "index " << index[i] << " out of bounds for dim " << i
                     << " with extent " << shape_[i]);
        linear += index[i] * strides_[i];
    }
    return linear;
}

double
Buffer::at(const std::vector<std::int64_t> &index) const
{
    return (*storage_)[static_cast<std::size_t>(linearIndex(index))];
}

void
Buffer::set(const std::vector<std::int64_t> &index, double value)
{
    (*storage_)[static_cast<std::size_t>(linearIndex(index))] = value;
}

std::int64_t
Buffer::atInt(const std::vector<std::int64_t> &index) const
{
    return static_cast<std::int64_t>(at(index));
}

void
Buffer::setInt(const std::vector<std::int64_t> &index, std::int64_t value)
{
    set(index, static_cast<double>(value));
}

std::shared_ptr<Buffer>
Buffer::subview(const std::vector<std::int64_t> &offsets,
                const std::vector<std::int64_t> &sizes) const
{
    C4CAM_ASSERT(offsets.size() == shape_.size() &&
                     sizes.size() == shape_.size(),
                 "subview rank mismatch");
    auto view = create();
    view->dtype_ = dtype_;
    view->shape_ = sizes;
    view->strides_ = strides_;
    view->offset_ = offset_;
    view->storage_ = storage_;
    for (std::size_t i = 0; i < offsets.size(); ++i) {
        C4CAM_ASSERT(offsets[i] >= 0 && sizes[i] >= 0 &&
                         offsets[i] + sizes[i] <= shape_[i],
                     "subview window [" << offsets[i] << ", "
                     << offsets[i] + sizes[i] << ") outside dim " << i
                     << " extent " << shape_[i]);
        view->offset_ += offsets[i] * strides_[i];
    }
    return view;
}

namespace {

/**
 * Row-major walk over every index of @p shape. Templated on the
 * callback so the per-element call inlines (this sits under every
 * elementwise buffer op -- a std::function here costs an indirect
 * call plus possible allocation per element).
 */
template <typename Fn>
void
forEachIndex(const std::vector<std::int64_t> &shape, Fn &&fn)
{
    std::vector<std::int64_t> index(shape.size(), 0);
    while (true) {
        fn(index);
        int dim = static_cast<int>(shape.size()) - 1;
        while (dim >= 0) {
            if (++index[static_cast<std::size_t>(dim)] <
                shape[static_cast<std::size_t>(dim)])
                break;
            index[static_cast<std::size_t>(dim)] = 0;
            --dim;
        }
        if (dim < 0)
            break;
    }
}

} // namespace

bool
Buffer::isContiguous() const
{
    // Dense row-major modulo extent-1 dims (their stride is never
    // stepped, so it cannot break contiguity).
    std::int64_t expected = 1;
    for (int i = static_cast<int>(shape_.size()) - 1; i >= 0; --i) {
        if (shape_[static_cast<std::size_t>(i)] == 1)
            continue;
        if (strides_[static_cast<std::size_t>(i)] != expected)
            return false;
        expected *= shape_[static_cast<std::size_t>(i)];
    }
    return true;
}

template <typename Fn>
void
Buffer::forEachLinear(Fn &&fn) const
{
    std::size_t n = static_cast<std::size_t>(numElements());
    if (n == 0)
        return;
    if (isContiguous()) {
        for (std::size_t e = 0; e < n; ++e)
            fn(static_cast<std::size_t>(offset_) + e);
        return;
    }
    std::vector<std::int64_t> index(shape_.size(), 0);
    std::int64_t linear = offset_;
    for (std::size_t e = 0; e < n; ++e) {
        fn(static_cast<std::size_t>(linear));
        for (int dim = static_cast<int>(shape_.size()) - 1; dim >= 0;
             --dim) {
            auto d = static_cast<std::size_t>(dim);
            linear += strides_[d];
            if (++index[d] < shape_[d])
                break;
            linear -= shape_[d] * strides_[d];
            index[d] = 0;
        }
    }
}

void
Buffer::copyFromFlat(const std::vector<double> &flat)
{
    C4CAM_ASSERT(flat.size() == static_cast<std::size_t>(numElements()),
                 "copyFromFlat element count mismatch: " << flat.size()
                 << " vs " << numElements());
    std::size_t i = 0;
    forEachLinear([&](std::size_t linear) {
        (*storage_)[linear] = flat[i++];
    });
}

void
Buffer::addFromFlat(const std::vector<double> &flat)
{
    C4CAM_ASSERT(flat.size() == static_cast<std::size_t>(numElements()),
                 "addFromFlat element count mismatch: " << flat.size()
                 << " vs " << numElements());
    std::size_t i = 0;
    forEachLinear([&](std::size_t linear) {
        (*storage_)[linear] += flat[i++];
    });
}

void
Buffer::copyFrom(const Buffer &src)
{
    C4CAM_ASSERT(shape_ == src.shape(), "copyFrom shape mismatch");
    if (numElements() == 0)
        return;
    forEachIndex(shape_, [&](const std::vector<std::int64_t> &index) {
        set(index, src.at(index));
    });
}

void
Buffer::fill(double value)
{
    if (numElements() == 0)
        return;
    forEachIndex(shape_, [&](const std::vector<std::int64_t> &index) {
        set(index, value);
    });
}

void
Buffer::readInto(std::vector<double> &out) const
{
    out.clear();
    std::size_t n = static_cast<std::size_t>(numElements());
    if (n == 0)
        return;
    if (isContiguous()) {
        // Dense view: one block copy instead of an index walk.
        auto begin = storage_->begin() +
                     static_cast<std::ptrdiff_t>(offset_);
        out.assign(begin, begin + static_cast<std::ptrdiff_t>(n));
        return;
    }
    out.reserve(n);
    // Strided view: odometer walk with an incrementally maintained
    // linear index (no per-element stride recomputation).
    forEachLinear([&](std::size_t linear) {
        out.push_back((*storage_)[linear]);
    });
}

std::vector<double>
Buffer::toVector() const
{
    std::vector<double> out;
    readInto(out);
    return out;
}

std::vector<std::vector<float>>
Buffer::toMatrix() const
{
    C4CAM_ASSERT(rank() == 2, "toMatrix requires a rank-2 buffer, got rank "
                 << rank());
    std::vector<std::vector<float>> out(
        static_cast<std::size_t>(shape_[0]),
        std::vector<float>(static_cast<std::size_t>(shape_[1])));
    for (std::int64_t r = 0; r < shape_[0]; ++r) {
        std::int64_t row_base = offset_ + r * strides_[0];
        for (std::int64_t c = 0; c < shape_[1]; ++c)
            out[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
                static_cast<float>((*storage_)[static_cast<std::size_t>(
                    row_base + c * strides_[1])]);
    }
    return out;
}

std::string
Buffer::str() const
{
    std::ostringstream oss;
    oss << (dtype_ == DType::F32 ? "f32" : "i64") << "[";
    for (std::size_t i = 0; i < shape_.size(); ++i) {
        if (i)
            oss << "x";
        oss << shape_[i];
    }
    oss << "]{";
    auto flat = toVector();
    for (std::size_t i = 0; i < flat.size() && i < 8; ++i) {
        if (i)
            oss << ", ";
        oss << flat[i];
    }
    if (flat.size() > 8)
        oss << ", ...";
    oss << "}";
    return oss.str();
}

std::vector<RtValue>
toRtValues(const std::vector<BufferPtr> &args)
{
    std::vector<RtValue> rt_args;
    rt_args.reserve(args.size());
    for (const BufferPtr &arg : args)
        rt_args.emplace_back(arg);
    return rt_args;
}

} // namespace c4cam::rt
