#ifndef C4CAM_RUNTIME_EXECUTIONPLAN_H
#define C4CAM_RUNTIME_EXECUTIONPLAN_H

/**
 * @file
 * Compile-once execution plans: slot-based bytecode for the lowered IR.
 *
 * The tree-walking Interpreter re-resolves everything on every query:
 * each op name runs through a string-compare dispatch chain, every SSA
 * value lives in a std::map keyed by pointer, and attributes (loop
 * bounds, cmp predicates, slice specs, search kinds) are re-parsed
 * from the attribute maps each time they are reached. None of that
 * work depends on the query -- so an ExecutionPlan does it once, at
 * session/engine build time:
 *
 *  - every op name is resolved to an Opcode enum;
 *  - every SSA value is numbered into a dense slot index
 *    (ir::ValueNumbering); the runtime frame is a flat
 *    std::vector<RtValue> instead of a map;
 *  - constants, predicates, slice/search/topk specs are pre-decoded
 *    into immediate fields and aux tables;
 *  - structured control flow (scf.for / scf.parallel / scf.if,
 *    cim.execute regions) is flattened into a branch-based
 *    instruction stream.
 *
 * Per-query execution is then a tight switch-on-opcode replay loop.
 * The plan compiles one instruction stream per execution phase
 * (Full / SetupOnly / QueryOnly, mirroring the phase-attribute
 * filtering of Interpreter::runTopLevel) over one shared slot
 * numbering, so a persistent PlanFrame carries setup-phase results
 * into the query replays exactly like the interpreter's persistent
 * SSA environment.
 *
 * Replay is semantically identical to the tree walk by construction:
 * both back ends share the host tensor kernels (runtime/HostKernels.h)
 * and drive the CamDevice through the same call sequence, so outputs
 * and simulated PerfReports are bit-identical (locked by
 * tests/runtime/ExecutionPlanTest.cpp and the
 * bench_serving_throughput --plan-vs-treewalk gate).
 *
 * A compiled plan holds no pointers into the IR: after compile() the
 * module is only needed to stay alive for the tree-walk fallback, not
 * for replay.
 */

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/Buffer.h"
#include "runtime/Interpreter.h"
#include "support/Trace.h"

namespace c4cam::ir {
class Module;
}
namespace c4cam::sim {
class CamDevice;
}

namespace c4cam::rt {

/** Opcode of one plan instruction. */
enum class Opcode : std::uint8_t {
    // Control flow
    Jump,          ///< pc = target
    BranchIfFalse, ///< if slot a == 0: pc = target
    BranchIfGe,    ///< if slot a >= slot b (ints): pc = target
    Copy,          ///< frame[r] = frame[a]
    CheckPosStep,  ///< throw unless frame[a] > 0 (imm: 0=for, 1=parallel)
    BeginSeqScope, ///< device timing: open sequential scope
    BeginParScope, ///< device timing: open parallel scope
    EndScope,      ///< device timing: close scope
    Return,        ///< stop; results are the slots in extra
    Halt,          ///< stop with no results (SetupOnly truncation)

    // Constants
    ConstInt,   ///< frame[r] = imm
    ConstFloat, ///< frame[r] = fimm

    // Arith / math
    CastToInt,   ///< frame[r] = int64(asFloat(a))
    CastToFloat, ///< frame[r] = asFloat(a)
    Sqrt,
    Select, ///< frame[r] = frame[a != 0 ? b : c]
    CmpI,   ///< imm = predicate (CmpIPred)
    CmpF,   ///< imm = predicate (CmpFPred)
    AddI, SubI, MulI, DivI, RemI, MinI, MaxI,
    AddF, SubF, MulF, DivF, MinF, MaxF,

    // Buffers (memref / tensor / bufferization)
    AllocBuf, ///< aux = shape spec
    CopyBuf,  ///< element-count-preserving copy a -> b
    Subview,  ///< aux = slice spec
    LoadF, LoadI, ///< extra = index slots
    Store,        ///< a = value, b = buffer, extra = index slots

    // Host tensor kernels (torch / cim)
    Transpose2d,
    MatmulOp,
    SubBroadcastOp,
    DivElem,
    DivCosine, ///< a = QxN, b = query norms, c = stored norms
    NormOp,    ///< imm = p
    TopkOp,    ///< aux = topk spec
    SimilarityOp, ///< aux = similarity spec
    MergePartial, ///< frame[r] = a + b (fresh buffer)
    CimAcquire,   ///< frame[r] = frame.nextCimHandle++

    // Device (cam)
    CamAllocBank,
    CamAllocMat,
    CamAllocArray,
    CamAllocSubarray,
    CamGetSubarray, ///< operands a, b, c, extra[0]
    CamWriteValue,  ///< imm = row_offset
    CamSearch,      ///< aux = search spec
    CamRead,
    CamMergePartialSub, ///< in-place acc += partial, postMerge

    // Optimizer-introduced ops (rt::PlanOptimizer). A raw compile()
    // never emits these; replay still handles them so partially
    // optimized plans stay executable.
    Nop,          ///< placeholder left by a rewrite; compacted away
    FusedIntPair, ///< imm = IntSub1 | IntSub2<<8 | chain bits: r = op1(a,b); r2 = op2(c,extra[0])
    FusedFloatPair, ///< float twin of FusedIntPair (FloatSub codes)
    FusedCopyPair,  ///< frame[r] = frame[a]; frame[r2] = frame[c]
    FusedCmpBranch, ///< r = cmpi(a, b, imm&0xff); if !r: pc = target (r = -1: unstored)
    FusedAddJump,   ///< r = a + b (ints); pc = target (loop back-edge)
    FusedSubviewSearch, ///< r = subview(b, slices[aux]); search(a, r, searches[imm]) (r = -1: view stays local)
};

/** Integer compare predicates (pre-decoded from the "predicate" attr). */
enum class CmpIPred : std::uint8_t { Eq, Ne, Slt, Sle, Sgt, Sge };
/** Float compare predicates. */
enum class CmpFPred : std::uint8_t { Olt, Ole, Ogt, Oge, Oeq };

/// @name Fused-pair sub-op codes
/// FusedIntPair/FusedFloatPair pack two of these into Instr::imm
/// (op1 | op2 << 8). Deliberately dense 0-based codes rather than raw
/// Opcode values: the replay decoder is a tiny always-inlined switch
/// the compiler turns into a jump table, so a fused pair costs two
/// arithmetic bodies + ONE dispatch -- the entire point of the fusion
/// pass. Only rt::PlanOptimizer emits them.
/// @{
enum class IntSub : std::uint8_t { Add, Sub, Mul, Min, Max };
enum class FloatSub : std::uint8_t { Add, Sub, Mul, Div, Min, Max };
/// @}

/// @name Fused-pair chain bits (imm bits 16/17)
/// Set when op2's first/second operand is op1's result: replay forwards
/// the value in a register instead of re-reading slot r (the operand
/// field is cleared to -1). When every reader of r across the whole
/// plan is chain-internal, the optimizer also drops the slot write
/// (r = -1) -- the fused pair then costs two arithmetic bodies, one
/// dispatch and ONE frame write, which is where fusion actually wins:
/// in a predicted interpreter loop the dispatch itself is nearly free,
/// the RtValue round-trips are not.
/// @{
inline constexpr std::int64_t kFusedChainX = std::int64_t{1} << 16;
inline constexpr std::int64_t kFusedChainY = std::int64_t{1} << 17;
/// @}

/** Evaluate one packed IntSub code; invalid codes yield x (the
 *  optimizer is the only emitter, so they cannot occur in a plan). */
inline std::int64_t
evalIntSub(std::uint8_t code, std::int64_t x, std::int64_t y)
{
    switch (static_cast<IntSub>(code)) {
      case IntSub::Add:
        return x + y;
      case IntSub::Sub:
        return x - y;
      case IntSub::Mul:
        return x * y;
      case IntSub::Min:
        return std::min(x, y);
      case IntSub::Max:
        return std::max(x, y);
    }
    return x;
}

/** Evaluate one packed FloatSub code (see evalIntSub). */
inline double
evalFloatSub(std::uint8_t code, double x, double y)
{
    switch (static_cast<FloatSub>(code)) {
      case FloatSub::Add:
        return x + y;
      case FloatSub::Sub:
        return x - y;
      case FloatSub::Mul:
        return x * y;
      case FloatSub::Div:
        return x / y;
      case FloatSub::Min:
        // std::min/max, not bare comparisons: replay results must stay
        // bit-identical to the unfused MinF/MaxF cases (NaN ordering).
        return std::min(x, y);
      case FloatSub::Max:
        return std::max(x, y);
    }
    return x;
}

/** One replay instruction. Slot fields index the PlanFrame. */
struct Instr
{
    Opcode op;
    std::int32_t a = -1;  ///< first operand slot
    std::int32_t b = -1;  ///< second operand slot
    std::int32_t c = -1;  ///< third operand slot
    std::int32_t r = -1;  ///< first result slot
    std::int32_t r2 = -1; ///< second result slot
    std::int32_t target = -1; ///< branch target (instruction index)
    std::int32_t aux = -1;    ///< index into the opcode's aux table
    std::int64_t imm = 0;     ///< integer immediate / predicate
    double fimm = 0.0;        ///< float immediate
    std::vector<std::int32_t> extra; ///< variadic operand/result slots
};

/**
 * All mutable state of one plan-based execution: the dense slot frame
 * (the counterpart of ExecutionState's SSA environment) and the
 * cim-handle counter. Forking a post-setup frame for a device replica
 * is a plain copy: setup-phase results are immutable once programmed,
 * exactly like ExecutionState::forkForReplica.
 */
struct PlanFrame
{
    std::vector<RtValue> slots;
    std::int64_t nextCimHandle = 1;

    /** Tracing handle for the *next* run() call: when enabled, replay
     *  records a "plan-replay" span under trace.parentSpanId (the
     *  serving layer's execute span). Default-disabled; copying a
     *  frame for a replica copies a disabled context or the caller
     *  re-stamps it per query. */
    support::SpanContext trace;
};

/**
 * A compiled, immutable execution plan for one kernel function.
 * Thread-safe for concurrent run() calls provided each thread passes
 * its own PlanFrame (and its own CamDevice replica, if any).
 */
class ExecutionPlan
{
  public:
    using ExecPhase = Interpreter::ExecPhase;

    /**
     * Compile function @p entry of @p module into a plan. Throws
     * CompilerError (with the nearest-mnemonic diagnostic) when the
     * function contains an op outside the executable vocabulary.
     */
    static std::shared_ptr<const ExecutionPlan>
    compile(const ir::Module &module, const std::string &entry);

    /** A fresh frame sized for this plan's slot count. */
    PlanFrame makeFrame() const;

    /**
     * Replay phase @p phase with @p args (one RtValue per function
     * parameter) on @p frame. @p device backs cam ops and timing
     * scopes; may be nullptr for host-only IR. @return the operands of
     * func.return (empty for SetupOnly). The frame persists across
     * calls, which is what makes Setup-then-repeated-Query replay
     * work. @p executed_ops, when non-null, receives the number of
     * instructions the replay actually executed (loop iterations
     * included) -- the denominator of the dispatch microbench.
     */
    std::vector<RtValue> run(PlanFrame &frame, sim::CamDevice *device,
                             const std::vector<RtValue> &args,
                             ExecPhase phase = ExecPhase::Full,
                             std::uint64_t *executed_ops = nullptr) const;

    /** Whether the function carried cam-map phase annotations. */
    bool hasPhaseMarkers() const { return phased_; }

    /** Frame size (number of dense value slots, incl. loop temps). */
    std::int32_t numSlots() const { return numSlots_; }

    /** Instruction count of one phase's program (introspection). */
    std::size_t numInstructions(ExecPhase phase) const
    {
        return program(phase).size();
    }

    /** Name of the compiled function. */
    const std::string &entry() const { return entry_; }

  private:
    friend class PlanBuilder;
    friend class PlanOptimizer;

    /// @name Aux tables (indexed by Instr::aux)
    /// @{
    struct ShapeSpec
    {
        DType dtype;
        std::vector<std::int64_t> shape;
    };

    /** One offset/size entry: dynamic when slot >= 0, else imm. */
    struct SliceDim
    {
        std::int64_t imm = 0;
        std::int32_t slot = -1;
    };
    struct SliceSpec
    {
        std::vector<SliceDim> offsets;
        std::vector<SliceDim> sizes;
    };

    struct TopkSpec
    {
        std::int64_t k = 1;        ///< used when kSlot < 0
        std::int32_t kSlot = -1;   ///< dynamic k operand
        bool largest = false;
        bool postMergeCost = false; ///< cim.topk posts merge cost
    };

    enum class SimMetric : std::uint8_t { Dot, Eucl, Cos };
    struct SimilaritySpec
    {
        SimMetric metric = SimMetric::Dot;
        bool partial = false;
        std::int64_t k = 1;
        std::int32_t kSlot = -1;
    };

    struct SearchSpec
    {
        int kind = 0; ///< arch::SearchKind as int
        bool euclidean = false;
        bool selective = false;
        double threshold = 0.0;
        int rowBegin = -1;
        int rowEnd = -1;
        std::int32_t rowBeginSlot = -1;
        std::int32_t rowEndSlot = -1;
    };
    /// @}

    const std::vector<Instr> &program(ExecPhase phase) const;

    std::string entry_;
    bool phased_ = false;
    std::int32_t numSlots_ = 0;
    std::size_t numArgs_ = 0;
    /** Slots of the function's entry-block arguments. */
    std::vector<std::int32_t> argSlots_;

    std::vector<Instr> full_;
    std::vector<Instr> setup_;
    std::vector<Instr> query_;

    std::vector<ShapeSpec> shapes_;
    std::vector<SliceSpec> slices_;
    std::vector<TopkSpec> topks_;
    std::vector<SimilaritySpec> sims_;
    std::vector<SearchSpec> searches_;
};

} // namespace c4cam::rt

#endif // C4CAM_RUNTIME_EXECUTIONPLAN_H
