#include "runtime/ExecutionPlan.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_set>

#include "dialects/cam/CamDialect.h"
#include "dialects/cim/CimDialect.h"
#include "dialects/torch/TorchDialect.h"
#include "ir/IR.h"
#include "ir/ValueNumbering.h"
#include "runtime/HostKernels.h"
#include "runtime/OpSupport.h"
#include "sim/CamDevice.h"
#include "support/Error.h"

namespace c4cam::rt {

using namespace ir;
namespace camd = c4cam::dialects::cam;
namespace cimd = c4cam::dialects::cim;
namespace torchd = c4cam::dialects::torch;

//
// Plan compiler
//

/**
 * Builds the per-phase instruction streams of one ExecutionPlan. The
 * builder mirrors Executor's semantics op for op: every runtime
 * decision the tree walk makes from strings/attributes is made here,
 * once, and baked into opcodes, slots and aux tables.
 */
class PlanBuilder
{
  public:
    using ExecPhase = ExecutionPlan::ExecPhase;

    PlanBuilder(ExecutionPlan &plan, Operation *func)
        : plan_(plan), vn_(ValueNumbering::forFunction(func)), func_(func)
    {
        plan_.numSlots_ = vn_.numSlots();
    }

    void
    build()
    {
        Block &body = func_->region(0).front();
        plan_.numArgs_ = body.numArguments();
        for (std::size_t i = 0; i < body.numArguments(); ++i)
            plan_.argSlots_.push_back(vn_.slot(body.argument(i)));
        plan_.phased_ = Interpreter::hasPhaseMarkers(func_);

        compileTopLevel(body, ExecPhase::Full, plan_.full_);
        if (plan_.phased_) {
            compileTopLevel(body, ExecPhase::SetupOnly, plan_.setup_);
            compileTopLevel(body, ExecPhase::QueryOnly, plan_.query_);
        }
    }

  private:
    static bool
    isTerminator(const std::string &name)
    {
        return name == kReturnOpName || name == "scf.yield" ||
               name == cimd::kYield;
    }

    /// @name Emission helpers
    /// @{
    std::int32_t pc() const
    {
        return static_cast<std::int32_t>(prog_->size());
    }

    Instr &
    emit(Opcode op)
    {
        prog_->push_back(Instr{});
        prog_->back().op = op;
        return prog_->back();
    }

    std::int32_t use(Operation *op, std::size_t i) const
    {
        return vn_.slot(op->operand(i));
    }
    std::int32_t def(Operation *op, std::size_t i = 0) const
    {
        return vn_.slot(op->result(i));
    }

    /** A scratch slot beyond the SSA numbering (loop yield temps). */
    std::int32_t
    newTemp()
    {
        return plan_.numSlots_++;
    }

    void
    emitCopy(std::int32_t from, std::int32_t to)
    {
        Instr &i = emit(Opcode::Copy);
        i.a = from;
        i.r = to;
    }
    /// @}

    /**
     * Phase-filtered compilation of the function's top-level block,
     * mirroring Interpreter::runTopLevel: SetupOnly skips query-tagged
     * ops and anything (statically) downstream of them and truncates
     * at the terminator; QueryOnly skips setup-tagged ops.
     */
    void
    compileTopLevel(Block &block, ExecPhase phase,
                    std::vector<Instr> &program)
    {
        prog_ = &program;
        std::unordered_set<Value *> defined;
        for (std::size_t i = 0; i < block.numArguments(); ++i)
            defined.insert(block.argument(i));

        auto ready = [&defined](Operation *op) {
            for (std::size_t i = 0; i < op->numOperands(); ++i)
                if (!defined.count(op->operand(i)))
                    return false;
            return true;
        };

        for (Operation *op : block.opVector()) {
            if (isTerminator(op->name())) {
                if (phase == ExecPhase::SetupOnly) {
                    emit(Opcode::Halt);
                    return;
                }
                Instr &ret = emit(Opcode::Return);
                for (std::size_t i = 0; i < op->numOperands(); ++i)
                    ret.extra.push_back(use(op, i));
                return;
            }
            if (phase == ExecPhase::SetupOnly) {
                // The dynamic operands-ready probe of the tree walk is
                // a deterministic dataflow property; resolve it here.
                if (op->strAttrOr(camd::kPhaseAttr, "") ==
                        camd::kPhaseQuery ||
                    !ready(op))
                    continue;
                for (std::size_t i = 0; i < op->numResults(); ++i)
                    defined.insert(op->result(i));
            } else if (phase == ExecPhase::QueryOnly) {
                if (op->strAttrOr(camd::kPhaseAttr, "") ==
                    camd::kPhaseSetup)
                    continue;
            }
            emitOp(op);
        }
    }

    /**
     * Flatten @p block (nested: no phase filtering, like runBlock).
     * Stops at the first terminator and hands it to @p on_terminator;
     * hands nullptr when the block has none.
     */
    void
    flattenBlock(Block &block,
                 const std::function<void(Operation *)> &on_terminator)
    {
        for (Operation *op : block.opVector()) {
            if (isTerminator(op->name())) {
                on_terminator(op);
                return;
            }
            emitOp(op);
        }
        on_terminator(nullptr);
    }

    void
    emitOp(Operation *op)
    {
        std::string dialect = op->dialect();
        if (dialect == "arith" || dialect == "math") {
            emitArith(op);
        } else if (dialect == "scf") {
            emitScf(op);
        } else if (dialect == "memref") {
            emitMemRef(op);
        } else if (dialect == "tensor" || dialect == "bufferization") {
            emitTensorOp(op);
        } else if (dialect == "torch") {
            emitTorch(op);
        } else if (dialect == "cim") {
            emitCim(op);
        } else if (dialect == "cam") {
            emitCam(op);
        } else {
            throwUnknownOp("plan compiler", op);
        }
    }

    void
    emitArith(Operation *op)
    {
        const std::string &name = op->name();
        if (name == "arith.constant") {
            const Attribute &value = op->attr("value");
            if (value.isInt()) {
                Instr &i = emit(Opcode::ConstInt);
                i.imm = value.asInt();
                i.r = def(op);
            } else if (value.isBool()) {
                Instr &i = emit(Opcode::ConstInt);
                i.imm = static_cast<std::int64_t>(value.asBool());
                i.r = def(op);
            } else {
                Instr &i = emit(Opcode::ConstFloat);
                i.fimm = value.asFloat();
                i.r = def(op);
            }
            return;
        }
        auto unary = [&](Opcode opcode) {
            Instr &i = emit(opcode);
            i.a = use(op, 0);
            i.r = def(op);
        };
        auto binary = [&](Opcode opcode) {
            Instr &i = emit(opcode);
            i.a = use(op, 0);
            i.b = use(op, 1);
            i.r = def(op);
        };
        if (name == "arith.index_cast" || name == "arith.fptosi")
            return unary(Opcode::CastToInt);
        if (name == "arith.sitofp")
            return unary(Opcode::CastToFloat);
        if (name == "math.sqrt")
            return unary(Opcode::Sqrt);
        if (name == "arith.select") {
            Instr &i = emit(Opcode::Select);
            i.a = use(op, 0);
            i.b = use(op, 1);
            i.c = use(op, 2);
            i.r = def(op);
            return;
        }
        if (name == "arith.cmpi") {
            std::string pred = op->strAttr("predicate");
            CmpIPred p;
            if (pred == "eq")
                p = CmpIPred::Eq;
            else if (pred == "ne")
                p = CmpIPred::Ne;
            else if (pred == "slt")
                p = CmpIPred::Slt;
            else if (pred == "sle")
                p = CmpIPred::Sle;
            else if (pred == "sgt")
                p = CmpIPred::Sgt;
            else if (pred == "sge")
                p = CmpIPred::Sge;
            else
                C4CAM_USER_ERROR("unknown cmpi predicate '" << pred
                                 << "'");
            Instr &i = emit(Opcode::CmpI);
            i.a = use(op, 0);
            i.b = use(op, 1);
            i.r = def(op);
            i.imm = static_cast<std::int64_t>(p);
            return;
        }
        if (name == "arith.cmpf") {
            std::string pred = op->strAttrOr("predicate", "olt");
            CmpFPred p;
            if (pred == "olt")
                p = CmpFPred::Olt;
            else if (pred == "ole")
                p = CmpFPred::Ole;
            else if (pred == "ogt")
                p = CmpFPred::Ogt;
            else if (pred == "oge")
                p = CmpFPred::Oge;
            else if (pred == "oeq")
                p = CmpFPred::Oeq;
            else
                C4CAM_USER_ERROR("unknown cmpf predicate '" << pred
                                 << "'");
            Instr &i = emit(Opcode::CmpF);
            i.a = use(op, 0);
            i.b = use(op, 1);
            i.r = def(op);
            i.imm = static_cast<std::int64_t>(p);
            return;
        }
        if (name == "arith.addi")
            return binary(Opcode::AddI);
        if (name == "arith.subi")
            return binary(Opcode::SubI);
        if (name == "arith.muli")
            return binary(Opcode::MulI);
        if (name == "arith.divsi")
            return binary(Opcode::DivI);
        if (name == "arith.remsi")
            return binary(Opcode::RemI);
        if (name == "arith.minsi")
            return binary(Opcode::MinI);
        if (name == "arith.maxsi")
            return binary(Opcode::MaxI);
        if (name == "arith.addf")
            return binary(Opcode::AddF);
        if (name == "arith.subf")
            return binary(Opcode::SubF);
        if (name == "arith.mulf")
            return binary(Opcode::MulF);
        if (name == "arith.divf")
            return binary(Opcode::DivF);
        if (name == "arith.minimumf")
            return binary(Opcode::MinF);
        if (name == "arith.maximumf")
            return binary(Opcode::MaxF);
        throwUnknownOp("plan compiler", op);
    }

    void
    emitScf(Operation *op)
    {
        const std::string &name = op->name();
        if (name == "scf.for") {
            emitScfFor(op);
            return;
        }
        if (name == "scf.parallel") {
            emitScfParallel(op);
            return;
        }
        if (name == "scf.if") {
            Instr &br = emit(Opcode::BranchIfFalse);
            br.a = use(op, 0);
            std::int32_t br_idx = pc() - 1;
            flattenBlock(op->region(0).front(), [](Operation *) {
                // scf.yield inside an if body carries no control flow;
                // its operands are plain env reads in the tree walk.
            });
            (*prog_)[static_cast<std::size_t>(br_idx)].target = pc();
            return;
        }
        throwUnknownOp("plan compiler", op);
    }

    void
    emitScfFor(Operation *op)
    {
        std::int32_t lb = use(op, 0);
        std::int32_t ub = use(op, 1);
        std::int32_t step = use(op, 2);
        Block &body = op->region(0).front();
        std::size_t num_iters = op->numOperands() - 3;
        C4CAM_CHECK(body.numArguments() == 1 + num_iters,
                    "scf.for body arity mismatch");
        std::int32_t iv = vn_.slot(body.argument(0));

        Instr &chk = emit(Opcode::CheckPosStep);
        chk.a = step;
        chk.imm = 0;
        for (std::size_t i = 0; i < num_iters; ++i)
            emitCopy(use(op, 3 + i), vn_.slot(body.argument(1 + i)));
        emit(Opcode::BeginSeqScope);
        emitCopy(lb, iv);

        std::int32_t head = pc();
        Instr &exit_br = emit(Opcode::BranchIfGe);
        exit_br.a = iv;
        exit_br.b = ub;
        std::int32_t exit_idx = pc() - 1;

        flattenBlock(body, [&](Operation *term) {
            std::size_t yielded = term ? term->numOperands() : 0;
            C4CAM_CHECK(yielded == num_iters,
                        "scf.for yield arity mismatch");
            if (num_iters == 0)
                return;
            // Yields may permute the carried values; stage through
            // temps so sequential copies cannot clobber a source.
            std::vector<std::int32_t> temps;
            for (std::size_t i = 0; i < num_iters; ++i) {
                std::int32_t tmp = newTemp();
                temps.push_back(tmp);
                emitCopy(vn_.slot(term->operand(i)), tmp);
            }
            for (std::size_t i = 0; i < num_iters; ++i)
                emitCopy(temps[i], vn_.slot(body.argument(1 + i)));
        });

        Instr &inc = emit(Opcode::AddI);
        inc.a = iv;
        inc.b = step;
        inc.r = iv;
        Instr &back = emit(Opcode::Jump);
        back.target = head;
        (*prog_)[static_cast<std::size_t>(exit_idx)].target = pc();
        emit(Opcode::EndScope);
        for (std::size_t i = 0; i < num_iters; ++i)
            emitCopy(vn_.slot(body.argument(1 + i)), def(op, i));
    }

    void
    emitScfParallel(Operation *op)
    {
        std::int32_t lb = use(op, 0);
        std::int32_t ub = use(op, 1);
        std::int32_t step = use(op, 2);
        Block &body = op->region(0).front();
        std::int32_t iv = vn_.slot(body.argument(0));

        Instr &chk = emit(Opcode::CheckPosStep);
        chk.a = step;
        chk.imm = 1;
        emit(Opcode::BeginParScope);
        emitCopy(lb, iv);

        std::int32_t head = pc();
        Instr &exit_br = emit(Opcode::BranchIfGe);
        exit_br.a = iv;
        exit_br.b = ub;
        std::int32_t exit_idx = pc() - 1;

        emit(Opcode::BeginSeqScope);
        flattenBlock(body, [](Operation *) {});
        emit(Opcode::EndScope);

        Instr &inc = emit(Opcode::AddI);
        inc.a = iv;
        inc.b = step;
        inc.r = iv;
        Instr &back = emit(Opcode::Jump);
        back.target = head;
        (*prog_)[static_cast<std::size_t>(exit_idx)].target = pc();
        emit(Opcode::EndScope);
    }

    /** Decode the static_offsets/static_sizes + dynamic operand form. */
    std::int32_t
    addSliceSpec(Operation *op)
    {
        ExecutionPlan::SliceSpec spec;
        std::vector<std::int64_t> offsets =
            op->attr("static_offsets").asIntArray();
        std::vector<std::int64_t> sizes =
            op->attr("static_sizes").asIntArray();
        std::size_t operand_idx = 1;
        for (std::int64_t offset : offsets) {
            ExecutionPlan::SliceDim dim;
            if (offset == -1) {
                C4CAM_CHECK(operand_idx < op->numOperands(),
                            "missing dynamic offset operand");
                dim.slot = use(op, operand_idx++);
            } else {
                dim.imm = offset;
            }
            spec.offsets.push_back(dim);
        }
        for (std::int64_t size : sizes) {
            ExecutionPlan::SliceDim dim;
            if (size == -1) {
                C4CAM_CHECK(operand_idx < op->numOperands(),
                            "missing dynamic size operand");
                dim.slot = use(op, operand_idx++);
            } else {
                dim.imm = size;
            }
            spec.sizes.push_back(dim);
        }
        plan_.slices_.push_back(std::move(spec));
        return static_cast<std::int32_t>(plan_.slices_.size() - 1);
    }

    void
    emitMemRef(Operation *op)
    {
        const std::string &name = op->name();
        if (name == "memref.alloc") {
            Type t = op->result(0)->type();
            ExecutionPlan::ShapeSpec spec;
            spec.dtype =
                t.elementType().isInteger() || t.elementType().isIndex()
                    ? DType::I64
                    : DType::F32;
            spec.shape = t.shape();
            plan_.shapes_.push_back(std::move(spec));
            Instr &i = emit(Opcode::AllocBuf);
            i.aux = static_cast<std::int32_t>(plan_.shapes_.size() - 1);
            i.r = def(op);
            return;
        }
        if (name == "memref.dealloc")
            return; // storage is reference-counted
        if (name == "memref.copy") {
            Instr &i = emit(Opcode::CopyBuf);
            i.a = use(op, 0);
            i.b = use(op, 1);
            return;
        }
        if (name == "memref.subview") {
            Instr &i = emit(Opcode::Subview);
            i.aux = addSliceSpec(op);
            i.a = use(op, 0);
            i.r = def(op);
            return;
        }
        if (name == "memref.load") {
            Instr &i = emit(op->result(0)->type().isFloat()
                                ? Opcode::LoadF
                                : Opcode::LoadI);
            i.a = use(op, 0);
            for (std::size_t j = 1; j < op->numOperands(); ++j)
                i.extra.push_back(use(op, j));
            i.r = def(op);
            return;
        }
        if (name == "memref.store") {
            Instr &i = emit(Opcode::Store);
            i.a = use(op, 0);
            i.b = use(op, 1);
            for (std::size_t j = 2; j < op->numOperands(); ++j)
                i.extra.push_back(use(op, j));
            return;
        }
        throwUnknownOp("plan compiler", op);
    }

    void
    emitTensorOp(Operation *op)
    {
        const std::string &name = op->name();
        if (name == "tensor.extract_slice") {
            Instr &i = emit(Opcode::Subview);
            i.aux = addSliceSpec(op);
            i.a = use(op, 0);
            i.r = def(op);
            return;
        }
        if (name == "tensor.empty") {
            ExecutionPlan::ShapeSpec spec;
            spec.dtype = DType::F32;
            spec.shape = op->result(0)->type().shape();
            plan_.shapes_.push_back(std::move(spec));
            Instr &i = emit(Opcode::AllocBuf);
            i.aux = static_cast<std::int32_t>(plan_.shapes_.size() - 1);
            i.r = def(op);
            return;
        }
        if (name == "bufferization.to_memref" ||
            name == "bufferization.to_tensor") {
            emitCopy(use(op, 0), def(op));
            return;
        }
        throwUnknownOp("plan compiler", op);
    }

    void
    emitTorch(Operation *op)
    {
        const std::string &name = op->name();
        auto unary = [&](Opcode opcode) {
            Instr &i = emit(opcode);
            i.a = use(op, 0);
            i.r = def(op);
        };
        auto binary = [&](Opcode opcode) {
            Instr &i = emit(opcode);
            i.a = use(op, 0);
            i.b = use(op, 1);
            i.r = def(op);
        };
        if (name == torchd::kTranspose)
            return unary(Opcode::Transpose2d);
        if (name == torchd::kMm || name == torchd::kMatmul)
            return binary(Opcode::MatmulOp);
        if (name == torchd::kSub)
            return binary(Opcode::SubBroadcastOp);
        if (name == torchd::kDiv)
            return binary(Opcode::DivElem);
        if (name == torchd::kNorm) {
            Instr &i = emit(Opcode::NormOp);
            i.a = use(op, 0);
            i.r = def(op);
            i.imm = op->intAttrOr("p", 2);
            return;
        }
        if (name == torchd::kTopk) {
            ExecutionPlan::TopkSpec spec;
            spec.k = op->intAttr("k");
            spec.largest = op->boolAttrOr("largest", true);
            spec.postMergeCost = false;
            plan_.topks_.push_back(spec);
            Instr &i = emit(Opcode::TopkOp);
            i.aux = static_cast<std::int32_t>(plan_.topks_.size() - 1);
            i.a = use(op, 0);
            i.r = def(op, 0);
            i.r2 = def(op, 1);
            return;
        }
        throwUnknownOp("plan compiler", op);
    }

    void
    emitCim(Operation *op)
    {
        const std::string &name = op->name();
        if (name == cimd::kAcquire) {
            Instr &i = emit(Opcode::CimAcquire);
            i.r = def(op);
            return;
        }
        if (name == cimd::kRelease)
            return;
        if (name == cimd::kExecute) {
            // The body uses captured outer SSA values directly; the
            // yields become the execute op's results.
            flattenBlock(op->region(0).front(), [&](Operation *term) {
                std::size_t yielded = term ? term->numOperands() : 0;
                C4CAM_CHECK(yielded == op->numResults(),
                            "cim.execute yield arity mismatch");
                for (std::size_t i = 0; i < yielded; ++i)
                    emitCopy(vn_.slot(term->operand(i)), def(op, i));
            });
            return;
        }
        auto unary = [&](Opcode opcode) {
            Instr &i = emit(opcode);
            i.a = use(op, 0);
            i.r = def(op);
        };
        auto binary = [&](Opcode opcode) {
            Instr &i = emit(opcode);
            i.a = use(op, 0);
            i.b = use(op, 1);
            i.r = def(op);
        };
        if (name == cimd::kTranspose)
            return unary(Opcode::Transpose2d);
        if (name == cimd::kMatmul)
            return binary(Opcode::MatmulOp);
        if (name == cimd::kSub)
            return binary(Opcode::SubBroadcastOp);
        if (name == cimd::kNorm) {
            Instr &i = emit(Opcode::NormOp);
            i.a = use(op, 0);
            i.r = def(op);
            i.imm = op->intAttrOr("p", 2);
            return;
        }
        if (name == cimd::kDiv) {
            if (op->numOperands() == 2)
                return binary(Opcode::DivElem);
            Instr &i = emit(Opcode::DivCosine);
            i.a = use(op, 0);
            i.b = use(op, 1);
            i.c = use(op, 2);
            i.r = def(op);
            return;
        }
        if (name == cimd::kTopk) {
            ExecutionPlan::TopkSpec spec;
            if (op->numOperands() >= 2)
                spec.kSlot = use(op, 1);
            else
                spec.k = op->intAttr("k");
            spec.largest = op->boolAttrOr("largest", false);
            spec.postMergeCost = true;
            plan_.topks_.push_back(spec);
            Instr &i = emit(Opcode::TopkOp);
            i.aux = static_cast<std::int32_t>(plan_.topks_.size() - 1);
            i.a = use(op, 0);
            i.r = def(op, 0);
            i.r2 = def(op, 1);
            return;
        }
        if (name == cimd::kSimilarity) {
            ExecutionPlan::SimilaritySpec spec;
            std::string metric = op->strAttr("metric");
            spec.metric = metric == cimd::kMetricDot
                              ? ExecutionPlan::SimMetric::Dot
                          : metric == cimd::kMetricEucl
                              ? ExecutionPlan::SimMetric::Eucl
                              : ExecutionPlan::SimMetric::Cos;
            spec.partial = op->boolAttrOr("partial", false);
            if (op->numOperands() >= 3)
                spec.kSlot = use(op, 2);
            else
                spec.k = op->intAttrOr("k", 1);
            plan_.sims_.push_back(spec);
            Instr &i = emit(Opcode::SimilarityOp);
            i.aux = static_cast<std::int32_t>(plan_.sims_.size() - 1);
            i.a = use(op, 0);
            i.b = use(op, 1);
            i.r = def(op, 0);
            i.r2 = def(op, 1);
            return;
        }
        if (name == cimd::kMergePartial) {
            // (handle, acc, partial) -> acc + partial, elementwise.
            Instr &i = emit(Opcode::MergePartial);
            i.a = use(op, 1);
            i.b = use(op, 2);
            i.r = def(op);
            return;
        }
        throwUnknownOp("plan compiler", op);
    }

    void
    emitCam(Operation *op)
    {
        const std::string &name = op->name();
        if (name == camd::kAllocBank) {
            Instr &i = emit(Opcode::CamAllocBank);
            i.a = use(op, 0);
            i.b = use(op, 1);
            i.r = def(op);
            return;
        }
        if (name == camd::kAllocMat) {
            Instr &i = emit(Opcode::CamAllocMat);
            i.a = use(op, 0);
            i.r = def(op);
            return;
        }
        if (name == camd::kAllocArray) {
            Instr &i = emit(Opcode::CamAllocArray);
            i.a = use(op, 0);
            i.r = def(op);
            return;
        }
        if (name == camd::kAllocSubarray) {
            Instr &i = emit(Opcode::CamAllocSubarray);
            i.a = use(op, 0);
            i.r = def(op);
            return;
        }
        if (name == camd::kGetSubarray) {
            Instr &i = emit(Opcode::CamGetSubarray);
            i.a = use(op, 0);
            i.b = use(op, 1);
            i.c = use(op, 2);
            i.extra.push_back(use(op, 3));
            i.r = def(op);
            return;
        }
        if (name == camd::kWriteValue) {
            Instr &i = emit(Opcode::CamWriteValue);
            i.a = use(op, 0);
            i.b = use(op, 1);
            i.imm = op->intAttrOr("row_offset", 0);
            return;
        }
        if (name == camd::kSearch) {
            ExecutionPlan::SearchSpec spec;
            std::string kind_str = op->strAttr("kind");
            arch::SearchKind kind = kind_str == camd::kKindExact
                                        ? arch::SearchKind::Exact
                                    : kind_str == camd::kKindBest
                                        ? arch::SearchKind::Best
                                        : arch::SearchKind::Range;
            spec.kind = static_cast<int>(kind);
            spec.euclidean = op->strAttr("metric") == camd::kMetricEucl;
            if (const Attribute *thr = op->findAttr("threshold"))
                spec.threshold = thr->asFloat();
            spec.rowBegin =
                static_cast<int>(op->intAttrOr("row_begin", -1));
            spec.rowEnd = static_cast<int>(op->intAttrOr("row_end", -1));
            if (op->numOperands() >= 4) {
                spec.rowBeginSlot = use(op, 2);
                spec.rowEndSlot = use(op, 3);
            }
            spec.selective = op->boolAttrOr("selective", false);
            plan_.searches_.push_back(spec);
            Instr &i = emit(Opcode::CamSearch);
            i.aux =
                static_cast<std::int32_t>(plan_.searches_.size() - 1);
            i.a = use(op, 0);
            i.b = use(op, 1);
            return;
        }
        if (name == camd::kRead) {
            Instr &i = emit(Opcode::CamRead);
            i.a = use(op, 0);
            i.r = def(op, 0);
            i.r2 = def(op, 1);
            return;
        }
        if (name == camd::kMergePartialSubarray) {
            // (sub, acc, partial): acc += partial in place.
            Instr &i = emit(Opcode::CamMergePartialSub);
            i.a = use(op, 1);
            i.b = use(op, 2);
            i.r = def(op);
            return;
        }
        throwUnknownOp("plan compiler", op);
    }

    ExecutionPlan &plan_;
    ValueNumbering vn_;
    Operation *func_;
    std::vector<Instr> *prog_ = nullptr;
};

std::shared_ptr<const ExecutionPlan>
ExecutionPlan::compile(const ir::Module &module, const std::string &entry)
{
    Operation *func = module.lookupFunction(entry);
    C4CAM_CHECK(func, "no function named '" << entry << "' in module");
    auto plan = std::make_shared<ExecutionPlan>();
    plan->entry_ = entry;
    PlanBuilder builder(*plan, func);
    builder.build();
    return plan;
}

const std::vector<Instr> &
ExecutionPlan::program(ExecPhase phase) const
{
    switch (phase) {
      case ExecPhase::Full:
        return full_;
      case ExecPhase::SetupOnly:
        return setup_;
      case ExecPhase::QueryOnly:
        return query_;
    }
    return full_;
}

PlanFrame
ExecutionPlan::makeFrame() const
{
    PlanFrame frame;
    frame.slots.resize(static_cast<std::size_t>(numSlots_));
    return frame;
}

//
// Replay engine
//

std::vector<RtValue>
ExecutionPlan::run(PlanFrame &frame, sim::CamDevice *device,
                   const std::vector<RtValue> &args, ExecPhase phase,
                   std::uint64_t *executed_ops) const
{
    C4CAM_CHECK(args.size() == numArgs_,
                "function '" << entry_ << "' takes " << numArgs_
                << " arguments, got " << args.size());
    if (phase != ExecPhase::Full)
        C4CAM_CHECK(phased_,
                    "function '" << entry_ << "' has no phase "
                    "annotations; phased execution requires a "
                    "cam-mapped kernel");
    if (frame.slots.size() < static_cast<std::size_t>(numSlots_))
        frame.slots.resize(static_cast<std::size_t>(numSlots_));
    for (std::size_t i = 0; i < args.size(); ++i)
        frame.slots[static_cast<std::size_t>(argSlots_[i])] = args[i];

    // When the frame carries a tracing context (stamped per query by
    // the serving layer), the whole replay is one span under that
    // layer's execute span. RAII so every exit path -- Return, Halt,
    // a throwing query -- closes the span; with tracing off this is
    // two inlined null checks.
    struct ReplaySpan
    {
        support::SpanContext ctx;
        double startUs = 0.0;
        explicit ReplaySpan(const support::SpanContext &c) : ctx(c)
        {
            if (ctx.enabled())
                startUs = ctx.collector->nowUs();
        }
        ~ReplaySpan()
        {
            if (!ctx.enabled())
                return;
            support::TraceEvent ev;
            ev.name = "plan-replay";
            ev.traceId = ctx.traceId;
            ev.queryId = ctx.queryId;
            ev.spanId = ctx.collector->newSpanId();
            ev.parentSpanId = ctx.parentSpanId;
            ev.startUs = startUs;
            ev.durUs = ctx.collector->nowUs() - startUs;
            ctx.collector->record(ev);
        }
    } replaySpan(frame.trace);

    const std::vector<Instr> &prog = program(phase);
    std::vector<RtValue> &s = frame.slots;

    // Scratch storage reused across instructions (no per-op allocs).
    std::vector<std::int64_t> index;
    std::vector<std::int64_t> offsets;
    std::vector<std::int64_t> sizes;
    std::vector<double> query_stage;
    std::vector<float> query_floats;

    auto slotInt = [&s](std::int32_t slot) {
        return s[static_cast<std::size_t>(slot)].asInt();
    };
    auto slotFloat = [&s](std::int32_t slot) {
        return s[static_cast<std::size_t>(slot)].asFloat();
    };
    auto slotBuf = [&s](std::int32_t slot) -> const BufferPtr & {
        return s[static_cast<std::size_t>(slot)].asBuffer();
    };
    auto put = [&s](std::int32_t slot, RtValue v) {
        s[static_cast<std::size_t>(slot)] = std::move(v);
    };
    auto requireDevice = [device]() {
        C4CAM_CHECK(device, "cam ops require an attached CAM simulator");
        return device;
    };
    // Resolve a slice spec's offset/size list against the frame.
    auto resolveSlice = [&s](const std::vector<SliceDim> &dims,
                             std::vector<std::int64_t> &out) {
        out.clear();
        for (const SliceDim &dim : dims)
            out.push_back(dim.slot >= 0
                              ? s[static_cast<std::size_t>(dim.slot)]
                                    .asInt()
                              : dim.imm);
    };
    auto evalCmpI = [](std::int64_t a, std::int64_t b,
                       std::int64_t pred) -> bool {
        switch (static_cast<CmpIPred>(pred)) {
          case CmpIPred::Eq:
            return a == b;
          case CmpIPred::Ne:
            return a != b;
          case CmpIPred::Slt:
            return a < b;
          case CmpIPred::Sle:
            return a <= b;
          case CmpIPred::Sgt:
            return a > b;
          case CmpIPred::Sge:
            return a >= b;
        }
        return false;
    };
    std::size_t pc = 0;
    const std::size_t end = prog.size();
    std::uint64_t executed = 0;
    while (pc < end) {
        const Instr &inst = prog[pc];
        ++executed;
        switch (inst.op) {
          case Opcode::Jump:
            pc = static_cast<std::size_t>(inst.target);
            continue;
          case Opcode::BranchIfFalse:
            if (slotInt(inst.a) == 0) {
                pc = static_cast<std::size_t>(inst.target);
                continue;
            }
            break;
          case Opcode::BranchIfGe:
            if (slotInt(inst.a) >= slotInt(inst.b)) {
                pc = static_cast<std::size_t>(inst.target);
                continue;
            }
            break;
          case Opcode::Copy:
            put(inst.r, s[static_cast<std::size_t>(inst.a)]);
            break;
          case Opcode::CheckPosStep:
            C4CAM_CHECK(slotInt(inst.a) > 0,
                        (inst.imm == 0 ? "scf.for" : "scf.parallel")
                        << " requires a positive step");
            break;
          case Opcode::BeginSeqScope:
            if (device)
                device->timing().beginScope(/*parallel=*/false);
            break;
          case Opcode::BeginParScope:
            if (device)
                device->timing().beginScope(/*parallel=*/true);
            break;
          case Opcode::EndScope:
            if (device)
                device->timing().endScope();
            break;
          case Opcode::Return: {
            std::vector<RtValue> results;
            results.reserve(inst.extra.size());
            for (std::int32_t slot : inst.extra)
                results.push_back(s[static_cast<std::size_t>(slot)]);
            if (executed_ops)
                *executed_ops += executed;
            return results;
          }
          case Opcode::Halt:
            if (executed_ops)
                *executed_ops += executed;
            return {};

          case Opcode::ConstInt:
            put(inst.r, RtValue(inst.imm));
            break;
          case Opcode::ConstFloat:
            put(inst.r, RtValue(inst.fimm));
            break;

          case Opcode::CastToInt:
            put(inst.r, RtValue(static_cast<std::int64_t>(
                            slotFloat(inst.a))));
            break;
          case Opcode::CastToFloat:
            put(inst.r, RtValue(slotFloat(inst.a)));
            break;
          case Opcode::Sqrt:
            put(inst.r, RtValue(std::sqrt(slotFloat(inst.a))));
            break;
          case Opcode::Select:
            put(inst.r, s[static_cast<std::size_t>(
                            slotInt(inst.a) != 0 ? inst.b : inst.c)]);
            break;
          case Opcode::CmpI:
            put(inst.r, RtValue(static_cast<std::int64_t>(evalCmpI(
                            slotInt(inst.a), slotInt(inst.b), inst.imm))));
            break;
          case Opcode::CmpF: {
            double a = slotFloat(inst.a);
            double b = slotFloat(inst.b);
            bool r = false;
            switch (static_cast<CmpFPred>(inst.imm)) {
              case CmpFPred::Olt:
                r = a < b;
                break;
              case CmpFPred::Ole:
                r = a <= b;
                break;
              case CmpFPred::Ogt:
                r = a > b;
                break;
              case CmpFPred::Oge:
                r = a >= b;
                break;
              case CmpFPred::Oeq:
                r = a == b;
                break;
            }
            put(inst.r, RtValue(static_cast<std::int64_t>(r)));
            break;
          }
          case Opcode::AddI:
            put(inst.r, RtValue(slotInt(inst.a) + slotInt(inst.b)));
            break;
          case Opcode::SubI:
            put(inst.r, RtValue(slotInt(inst.a) - slotInt(inst.b)));
            break;
          case Opcode::MulI:
            put(inst.r, RtValue(slotInt(inst.a) * slotInt(inst.b)));
            break;
          case Opcode::DivI: {
            std::int64_t b = slotInt(inst.b);
            C4CAM_CHECK(b != 0, "division by zero in arith.divsi");
            put(inst.r, RtValue(slotInt(inst.a) / b));
            break;
          }
          case Opcode::RemI: {
            std::int64_t b = slotInt(inst.b);
            C4CAM_CHECK(b != 0, "division by zero in arith.remsi");
            put(inst.r, RtValue(slotInt(inst.a) % b));
            break;
          }
          case Opcode::MinI:
            put(inst.r, RtValue(std::min(slotInt(inst.a),
                                         slotInt(inst.b))));
            break;
          case Opcode::MaxI:
            put(inst.r, RtValue(std::max(slotInt(inst.a),
                                         slotInt(inst.b))));
            break;
          case Opcode::AddF:
            put(inst.r, RtValue(slotFloat(inst.a) + slotFloat(inst.b)));
            break;
          case Opcode::SubF:
            put(inst.r, RtValue(slotFloat(inst.a) - slotFloat(inst.b)));
            break;
          case Opcode::MulF:
            put(inst.r, RtValue(slotFloat(inst.a) * slotFloat(inst.b)));
            break;
          case Opcode::DivF:
            put(inst.r, RtValue(slotFloat(inst.a) / slotFloat(inst.b)));
            break;
          case Opcode::MinF:
            put(inst.r, RtValue(std::min(slotFloat(inst.a),
                                         slotFloat(inst.b))));
            break;
          case Opcode::MaxF:
            put(inst.r, RtValue(std::max(slotFloat(inst.a),
                                         slotFloat(inst.b))));
            break;

          case Opcode::AllocBuf: {
            const ShapeSpec &spec =
                shapes_[static_cast<std::size_t>(inst.aux)];
            put(inst.r, RtValue(Buffer::alloc(spec.dtype, spec.shape)));
            break;
          }
          case Opcode::CopyBuf:
            host::copyInto(slotBuf(inst.a), slotBuf(inst.b));
            break;
          case Opcode::Subview: {
            const SliceSpec &spec =
                slices_[static_cast<std::size_t>(inst.aux)];
            resolveSlice(spec.offsets, offsets);
            resolveSlice(spec.sizes, sizes);
            put(inst.r,
                RtValue(slotBuf(inst.a)->subview(offsets, sizes)));
            break;
          }
          case Opcode::LoadF: {
            index.clear();
            for (std::int32_t slot : inst.extra)
                index.push_back(slotInt(slot));
            put(inst.r, RtValue(slotBuf(inst.a)->at(index)));
            break;
          }
          case Opcode::LoadI: {
            index.clear();
            for (std::int32_t slot : inst.extra)
                index.push_back(slotInt(slot));
            put(inst.r, RtValue(slotBuf(inst.a)->atInt(index)));
            break;
          }
          case Opcode::Store: {
            index.clear();
            for (std::int32_t slot : inst.extra)
                index.push_back(slotInt(slot));
            slotBuf(inst.b)->set(index, slotFloat(inst.a));
            break;
          }

          case Opcode::Transpose2d:
            put(inst.r, RtValue(host::transpose2d(slotBuf(inst.a))));
            break;
          case Opcode::MatmulOp:
            put(inst.r, RtValue(host::matmul(slotBuf(inst.a),
                                             slotBuf(inst.b))));
            break;
          case Opcode::SubBroadcastOp:
            put(inst.r, RtValue(host::subBroadcast(slotBuf(inst.a),
                                                   slotBuf(inst.b))));
            break;
          case Opcode::DivElem:
            put(inst.r, RtValue(host::elementwiseDiv(slotBuf(inst.a),
                                                     slotBuf(inst.b))));
            break;
          case Opcode::DivCosine:
            put(inst.r, RtValue(host::cosineDiv(slotBuf(inst.a),
                                                slotBuf(inst.b),
                                                slotBuf(inst.c))));
            break;
          case Opcode::NormOp:
            put(inst.r,
                RtValue(host::normLastDim(slotBuf(inst.a),
                                          static_cast<int>(inst.imm))));
            break;
          case Opcode::TopkOp: {
            const TopkSpec &spec =
                topks_[static_cast<std::size_t>(inst.aux)];
            const BufferPtr &in = slotBuf(inst.a);
            std::int64_t k =
                spec.kSlot >= 0 ? slotInt(spec.kSlot) : spec.k;
            auto [values, indices] = host::topk(in, k, spec.largest);
            put(inst.r, RtValue(values));
            put(inst.r2, RtValue(indices));
            if (spec.postMergeCost && device) {
                std::int64_t inner = in->shape().back();
                device->postMerge(static_cast<int>(inner));
            }
            break;
          }
          case Opcode::SimilarityOp: {
            const SimilaritySpec &spec =
                sims_[static_cast<std::size_t>(inst.aux)];
            const BufferPtr &stored = slotBuf(inst.a);
            const BufferPtr &query = slotBuf(inst.b);
            BufferPtr scores;
            bool largest = false;
            switch (spec.metric) {
              case SimMetric::Dot:
                scores = host::matmul(query, host::transpose2d(stored));
                largest = true;
                break;
              case SimMetric::Eucl:
                scores = host::normLastDim(
                    host::subBroadcast(query, stored), 2);
                largest = false;
                break;
              case SimMetric::Cos: {
                BufferPtr dots =
                    host::matmul(query, host::transpose2d(stored));
                BufferPtr qn = host::normLastDim(query, 2);
                BufferPtr sn = host::normLastDim(stored, 2);
                scores = host::cosineDiv(dots, qn, sn);
                largest = true;
                break;
              }
            }
            if (spec.partial) {
                auto indices = Buffer::alloc(DType::I64, scores->shape());
                for (std::int64_t q = 0; q < scores->shape()[0]; ++q)
                    for (std::int64_t n = 0; n < scores->shape()[1];
                         ++n)
                        indices->setInt({q, n}, n);
                put(inst.r, RtValue(scores));
                put(inst.r2, RtValue(indices));
                break;
            }
            std::int64_t k =
                spec.kSlot >= 0 ? slotInt(spec.kSlot) : spec.k;
            auto [values, indices] = host::topk(scores, k, largest);
            put(inst.r, RtValue(values));
            put(inst.r2, RtValue(indices));
            break;
          }
          case Opcode::MergePartial:
            put(inst.r, RtValue(host::elementwiseAdd(slotBuf(inst.a),
                                                     slotBuf(inst.b))));
            break;
          case Opcode::CimAcquire:
            put(inst.r, RtValue(frame.nextCimHandle++));
            break;

          case Opcode::CamAllocBank:
            put(inst.r,
                RtValue(requireDevice()->allocBank(
                    static_cast<int>(slotInt(inst.a)),
                    static_cast<int>(slotInt(inst.b)))));
            break;
          case Opcode::CamAllocMat:
            put(inst.r,
                RtValue(requireDevice()->allocMat(slotInt(inst.a))));
            break;
          case Opcode::CamAllocArray:
            put(inst.r,
                RtValue(requireDevice()->allocArray(slotInt(inst.a))));
            break;
          case Opcode::CamAllocSubarray:
            put(inst.r, RtValue(requireDevice()->allocSubarray(
                            slotInt(inst.a))));
            break;
          case Opcode::CamGetSubarray:
            put(inst.r, RtValue(requireDevice()->subarrayAt(
                            slotInt(inst.a), slotInt(inst.b),
                            slotInt(inst.c), slotInt(inst.extra[0]))));
            break;
          case Opcode::CamWriteValue:
            requireDevice()->writeValue(
                slotInt(inst.a), slotBuf(inst.b)->toMatrix(),
                static_cast<int>(inst.imm));
            break;
          case Opcode::CamSearch: {
            const SearchSpec &spec =
                searches_[static_cast<std::size_t>(inst.aux)];
            sim::Handle sub = slotInt(inst.a);
            const BufferPtr &query = slotBuf(inst.b);
            int row_begin = spec.rowBeginSlot >= 0
                                ? static_cast<int>(
                                      slotInt(spec.rowBeginSlot))
                                : spec.rowBegin;
            int row_end = spec.rowEndSlot >= 0
                              ? static_cast<int>(slotInt(spec.rowEndSlot))
                              : spec.rowEnd;
            query->readInto(query_stage);
            query_floats.assign(query_stage.begin(), query_stage.end());
            requireDevice()->search(
                sub, query_floats,
                static_cast<arch::SearchKind>(spec.kind), spec.euclidean,
                row_begin, row_end, spec.threshold, spec.selective);
            break;
          }
          case Opcode::CamRead: {
            const sim::SearchResult &result =
                requireDevice()->read(slotInt(inst.a));
            std::int64_t n =
                static_cast<std::int64_t>(result.values.size());
            auto values = Buffer::alloc(DType::F32, {n});
            auto indices = Buffer::alloc(DType::I64, {n});
            index.assign(1, 0);
            for (std::int64_t i = 0; i < n; ++i) {
                index[0] = i;
                values->set(index,
                            result.values[static_cast<std::size_t>(i)]);
                indices->setInt(
                    index, result.indices[static_cast<std::size_t>(i)]);
            }
            put(inst.r, RtValue(values));
            put(inst.r2, RtValue(indices));
            break;
          }
          case Opcode::CamMergePartialSub: {
            const BufferPtr &acc = slotBuf(inst.a);
            const BufferPtr &partial = slotBuf(inst.b);
            host::addInto(acc, partial);
            requireDevice()->postMerge(
                static_cast<int>(acc->numElements()));
            put(inst.r, s[static_cast<std::size_t>(inst.a)]);
            break;
          }

          case Opcode::Nop:
            break;
          // Fused pairs keep op1's result in a register: chained op2
          // operands (kFusedChainX/Y) take it directly, and when no
          // other instruction reads it (r = -1) the slot write is
          // skipped entirely -- op2's non-chained operands read their
          // slots exactly as the unfused sequence would.
          case Opcode::FusedIntPair: {
            const std::int64_t v1 =
                evalIntSub(static_cast<std::uint8_t>(inst.imm & 0xff),
                           slotInt(inst.a), slotInt(inst.b));
            if (inst.r >= 0)
                s[static_cast<std::size_t>(inst.r)].setInt(v1);
            const std::int64_t x2 =
                (inst.imm & kFusedChainX) ? v1 : slotInt(inst.c);
            const std::int64_t y2 =
                (inst.imm & kFusedChainY) ? v1 : slotInt(inst.extra[0]);
            s[static_cast<std::size_t>(inst.r2)].setInt(evalIntSub(
                static_cast<std::uint8_t>((inst.imm >> 8) & 0xff), x2,
                y2));
            break;
          }
          case Opcode::FusedFloatPair: {
            const double v1 =
                evalFloatSub(static_cast<std::uint8_t>(inst.imm & 0xff),
                             slotFloat(inst.a), slotFloat(inst.b));
            if (inst.r >= 0)
                s[static_cast<std::size_t>(inst.r)].setFloat(v1);
            const double x2 =
                (inst.imm & kFusedChainX) ? v1 : slotFloat(inst.c);
            const double y2 =
                (inst.imm & kFusedChainY) ? v1 : slotFloat(inst.extra[0]);
            s[static_cast<std::size_t>(inst.r2)].setFloat(evalFloatSub(
                static_cast<std::uint8_t>((inst.imm >> 8) & 0xff), x2,
                y2));
            break;
          }
          case Opcode::FusedCopyPair:
            put(inst.r, s[static_cast<std::size_t>(inst.a)]);
            put(inst.r2, s[static_cast<std::size_t>(inst.c)]);
            break;
          case Opcode::FusedCmpBranch: {
            bool taken = evalCmpI(slotInt(inst.a), slotInt(inst.b),
                                  inst.imm & 0xff);
            if (inst.r >= 0)
                s[static_cast<std::size_t>(inst.r)].setInt(
                    static_cast<std::int64_t>(taken));
            if (!taken) {
                pc = static_cast<std::size_t>(inst.target);
                continue;
            }
            break;
          }
          case Opcode::FusedAddJump:
            s[static_cast<std::size_t>(inst.r)].setInt(slotInt(inst.a) +
                                                       slotInt(inst.b));
            pc = static_cast<std::size_t>(inst.target);
            continue;
          case Opcode::FusedSubviewSearch: {
            const SliceSpec &spec =
                slices_[static_cast<std::size_t>(inst.aux)];
            resolveSlice(spec.offsets, offsets);
            resolveSlice(spec.sizes, sizes);
            const BufferPtr query =
                slotBuf(inst.b)->subview(offsets, sizes);
            if (inst.r >= 0)
                put(inst.r, RtValue(query));
            const SearchSpec &srch =
                searches_[static_cast<std::size_t>(inst.imm)];
            sim::Handle sub = slotInt(inst.a);
            int row_begin = srch.rowBeginSlot >= 0
                                ? static_cast<int>(
                                      slotInt(srch.rowBeginSlot))
                                : srch.rowBegin;
            int row_end = srch.rowEndSlot >= 0
                              ? static_cast<int>(slotInt(srch.rowEndSlot))
                              : srch.rowEnd;
            query->readInto(query_stage);
            query_floats.assign(query_stage.begin(), query_stage.end());
            requireDevice()->search(
                sub, query_floats,
                static_cast<arch::SearchKind>(srch.kind), srch.euclidean,
                row_begin, row_end, srch.threshold, srch.selective);
            break;
          }
        }
        ++pc;
    }
    if (executed_ops)
        *executed_ops += executed;
    return {};
}

} // namespace c4cam::rt
