#ifndef C4CAM_RUNTIME_OPSUPPORT_H
#define C4CAM_RUNTIME_OPSUPPORT_H

/**
 * @file
 * The executable op vocabulary and its diagnostics.
 *
 * Both execution back ends (the tree-walking interpreter and the
 * execution-plan compiler) support exactly the same op set; this
 * module owns the canonical list of mnemonics and produces the shared
 * unknown-op diagnostic: instead of a bare "unsupported op" after the
 * full dispatch chain, the error names the op, the enclosing function
 * and the nearest known mnemonic (typo repair for hand-written IR).
 */

#include <string>
#include <vector>

namespace c4cam::ir {
class Operation;
}

namespace c4cam::rt {

/** Every op mnemonic the execution back ends can run. */
const std::vector<std::string> &knownOpMnemonics();

/**
 * The known mnemonic closest to @p name by edit distance, or an empty
 * string when nothing is within a useful distance (less than half the
 * query length).
 */
std::string nearestKnownMnemonic(const std::string &name);

/**
 * Raise the CompilerError for an op no back end supports: names the
 * op, the function enclosing @p op (when reachable) and the nearest
 * known mnemonic. @p backend tags the failing engine ("interpreter"
 * or "plan compiler").
 */
[[noreturn]] void throwUnknownOp(const char *backend, ir::Operation *op);

} // namespace c4cam::rt

#endif // C4CAM_RUNTIME_OPSUPPORT_H
