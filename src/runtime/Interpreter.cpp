#include "runtime/Interpreter.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "dialects/cam/CamDialect.h"
#include "dialects/cim/CimDialect.h"
#include "dialects/torch/TorchDialect.h"
#include "runtime/HostKernels.h"
#include "runtime/OpSupport.h"
#include "support/Error.h"
#include "support/StringUtils.h"

namespace c4cam::rt {

using namespace ir;
namespace camd = c4cam::dialects::cam;
namespace cimd = c4cam::dialects::cim;
namespace torchd = c4cam::dialects::torch;

//
// ExecutionState
//

RtValue
ExecutionState::get(Value *value) const
{
    auto it = env_.find(value);
    C4CAM_ASSERT(it != env_.end(), "use of unevaluated SSA value");
    return it->second;
}

void
ExecutionState::set(Value *value, RtValue rt_value)
{
    env_[value] = std::move(rt_value);
}

ExecutionState
ExecutionState::forkForReplica(sim::CamDevice *device) const
{
    ExecutionState fork(device);
    fork.env_ = env_;
    fork.nextCimHandle_ = nextCimHandle_;
    return fork;
}

//
// Host tensor kernels live in runtime/HostKernels.h, shared with the
// execution-plan replay engine so the two back ends cannot drift.
//

using host::matmul;
using host::normLastDim;
using host::subBroadcast;
using host::topk;
using host::transpose2d;

namespace {

/**
 * One in-flight execution: borrows the (shared, read-only) module and
 * one (exclusively owned) ExecutionState. Constructed on the stack per
 * callFunction call, so concurrent executions never share mutable
 * interpreter state.
 */
class Executor
{
  public:
    using ExecPhase = Interpreter::ExecPhase;

    Executor(ExecutionState &state) : state_(state) {}

    std::vector<RtValue> runTopLevel(Block &block, ExecPhase phase);

  private:
    RtValue get(Value *value) const { return state_.get(value); }
    void set(Value *value, RtValue v) { state_.set(value, std::move(v)); }
    sim::CamDevice *device() const { return state_.device(); }

    /**
     * Run all ops of @p block. @return the operands of the terminator
     * (func.return / scf.yield / cim.yield) or empty.
     */
    std::vector<RtValue> runBlock(Block &block);

    /** True when every operand of @p op has a value in the env. */
    bool operandsReady(Operation *op) const;

    void runOp(Operation *op);

    /// @name Dialect-specific handlers
    /// @{
    void runArith(Operation *op);
    void runScf(Operation *op);
    void runMemRef(Operation *op);
    void runTensorOp(Operation *op);
    void runTorch(Operation *op);
    void runCim(Operation *op);
    void runCam(Operation *op);
    /// @}

    /** Resolve static+dynamic offset/size lists of slicing ops. */
    void resolveSlice(Operation *op, std::vector<std::int64_t> &offsets,
                      std::vector<std::int64_t> &sizes);

    ExecutionState &state_;
};

bool
Executor::operandsReady(Operation *op) const
{
    for (std::size_t i = 0; i < op->numOperands(); ++i)
        if (!state_.has(op->operand(i)))
            return false;
    return true;
}

std::vector<RtValue>
Executor::runTopLevel(Block &block, ExecPhase phase)
{
    for (Operation *op : block.opVector()) {
        const std::string &name = op->name();
        if (name == kReturnOpName || name == "scf.yield" ||
            name == cimd::kYield) {
            if (phase == ExecPhase::SetupOnly)
                return {};
            std::vector<RtValue> results;
            for (std::size_t i = 0; i < op->numOperands(); ++i)
                results.push_back(get(op->operand(i)));
            return results;
        }
        if (phase == ExecPhase::SetupOnly) {
            // Skip the query body and anything downstream of it
            // (untagged ops whose operands have not been evaluated).
            if (op->strAttrOr(camd::kPhaseAttr, "") == camd::kPhaseQuery ||
                !operandsReady(op))
                continue;
        } else if (phase == ExecPhase::QueryOnly) {
            if (op->strAttrOr(camd::kPhaseAttr, "") == camd::kPhaseSetup)
                continue;
        }
        runOp(op);
    }
    return {};
}

std::vector<RtValue>
Executor::runBlock(Block &block)
{
    return runTopLevel(block, ExecPhase::Full);
}

void
Executor::runOp(Operation *op)
{
    std::string dialect = op->dialect();
    if (dialect == "arith" || dialect == "math") {
        runArith(op);
    } else if (dialect == "scf") {
        runScf(op);
    } else if (dialect == "memref") {
        runMemRef(op);
    } else if (dialect == "tensor" || dialect == "bufferization") {
        runTensorOp(op);
    } else if (dialect == "torch") {
        runTorch(op);
    } else if (dialect == "cim") {
        runCim(op);
    } else if (dialect == "cam") {
        runCam(op);
    } else {
        throwUnknownOp("interpreter", op);
    }
}

//
// arith
//

void
Executor::runArith(Operation *op)
{
    const std::string &name = op->name();
    if (name == "arith.constant") {
        const Attribute &value = op->attr("value");
        if (value.isInt())
            set(op->result(0), RtValue(value.asInt()));
        else if (value.isBool())
            set(op->result(0), RtValue(std::int64_t(value.asBool())));
        else
            set(op->result(0), RtValue(value.asFloat()));
        return;
    }
    if (name == "arith.index_cast" || name == "arith.fptosi") {
        set(op->result(0),
            RtValue(static_cast<std::int64_t>(get(op->operand(0))
                                                   .asFloat())));
        return;
    }
    if (name == "arith.sitofp") {
        set(op->result(0), RtValue(get(op->operand(0)).asFloat()));
        return;
    }
    if (name == "math.sqrt") {
        set(op->result(0),
            RtValue(std::sqrt(get(op->operand(0)).asFloat())));
        return;
    }
    if (name == "arith.select") {
        bool cond = get(op->operand(0)).asInt() != 0;
        set(op->result(0), get(op->operand(cond ? 1 : 2)));
        return;
    }
    if (name == "arith.cmpi") {
        std::int64_t a = get(op->operand(0)).asInt();
        std::int64_t b = get(op->operand(1)).asInt();
        std::string pred = op->strAttr("predicate");
        bool r = false;
        if (pred == "eq")
            r = a == b;
        else if (pred == "ne")
            r = a != b;
        else if (pred == "slt")
            r = a < b;
        else if (pred == "sle")
            r = a <= b;
        else if (pred == "sgt")
            r = a > b;
        else if (pred == "sge")
            r = a >= b;
        else
            C4CAM_USER_ERROR("unknown cmpi predicate '" << pred << "'");
        set(op->result(0), RtValue(std::int64_t(r)));
        return;
    }
    if (name == "arith.cmpf") {
        double a = get(op->operand(0)).asFloat();
        double b = get(op->operand(1)).asFloat();
        std::string pred = op->strAttrOr("predicate", "olt");
        bool r = false;
        if (pred == "olt")
            r = a < b;
        else if (pred == "ole")
            r = a <= b;
        else if (pred == "ogt")
            r = a > b;
        else if (pred == "oge")
            r = a >= b;
        else if (pred == "oeq")
            r = a == b;
        else
            C4CAM_USER_ERROR("unknown cmpf predicate '" << pred << "'");
        set(op->result(0), RtValue(std::int64_t(r)));
        return;
    }

    // Integer binary ops.
    auto ibin = [&](auto fn) {
        std::int64_t a = get(op->operand(0)).asInt();
        std::int64_t b = get(op->operand(1)).asInt();
        set(op->result(0), RtValue(std::int64_t(fn(a, b))));
    };
    auto fbin = [&](auto fn) {
        double a = get(op->operand(0)).asFloat();
        double b = get(op->operand(1)).asFloat();
        set(op->result(0), RtValue(double(fn(a, b))));
    };
    if (name == "arith.addi")
        return ibin([](auto a, auto b) { return a + b; });
    if (name == "arith.subi")
        return ibin([](auto a, auto b) { return a - b; });
    if (name == "arith.muli")
        return ibin([](auto a, auto b) { return a * b; });
    if (name == "arith.divsi")
        return ibin([](auto a, auto b) {
            C4CAM_CHECK(b != 0, "division by zero in arith.divsi");
            return a / b;
        });
    if (name == "arith.remsi")
        return ibin([](auto a, auto b) {
            C4CAM_CHECK(b != 0, "division by zero in arith.remsi");
            return a % b;
        });
    if (name == "arith.minsi")
        return ibin([](auto a, auto b) { return std::min(a, b); });
    if (name == "arith.maxsi")
        return ibin([](auto a, auto b) { return std::max(a, b); });
    if (name == "arith.addf")
        return fbin([](auto a, auto b) { return a + b; });
    if (name == "arith.subf")
        return fbin([](auto a, auto b) { return a - b; });
    if (name == "arith.mulf")
        return fbin([](auto a, auto b) { return a * b; });
    if (name == "arith.divf")
        return fbin([](auto a, auto b) { return a / b; });
    if (name == "arith.minimumf")
        return fbin([](auto a, auto b) { return std::min(a, b); });
    if (name == "arith.maximumf")
        return fbin([](auto a, auto b) { return std::max(a, b); });
    throwUnknownOp("interpreter", op);
}

//
// scf
//

void
Executor::runScf(Operation *op)
{
    const std::string &name = op->name();
    if (name == "scf.for") {
        std::int64_t lb = get(op->operand(0)).asInt();
        std::int64_t ub = get(op->operand(1)).asInt();
        std::int64_t step = get(op->operand(2)).asInt();
        C4CAM_CHECK(step > 0, "scf.for requires a positive step");
        Block &body = op->region(0).front();
        std::size_t num_iters = op->numOperands() - 3;

        std::vector<RtValue> carried;
        for (std::size_t i = 0; i < num_iters; ++i)
            carried.push_back(get(op->operand(3 + i)));

        if (device())
            device()->timing().beginScope(/*parallel=*/false);
        for (std::int64_t iv = lb; iv < ub; iv += step) {
            set(body.argument(0), RtValue(iv));
            for (std::size_t i = 0; i < num_iters; ++i)
                set(body.argument(1 + i), carried[i]);
            std::vector<RtValue> yielded = runBlock(body);
            C4CAM_CHECK(yielded.size() == num_iters,
                        "scf.for yield arity mismatch");
            carried = std::move(yielded);
        }
        if (device())
            device()->timing().endScope();
        for (std::size_t i = 0; i < num_iters; ++i)
            set(op->result(i), carried[i]);
        return;
    }
    if (name == "scf.parallel") {
        std::int64_t lb = get(op->operand(0)).asInt();
        std::int64_t ub = get(op->operand(1)).asInt();
        std::int64_t step = get(op->operand(2)).asInt();
        C4CAM_CHECK(step > 0, "scf.parallel requires a positive step");
        Block &body = op->region(0).front();
        if (device())
            device()->timing().beginScope(/*parallel=*/true);
        for (std::int64_t iv = lb; iv < ub; iv += step) {
            set(body.argument(0), RtValue(iv));
            if (device())
                device()->timing().beginScope(/*parallel=*/false);
            runBlock(body);
            if (device())
                device()->timing().endScope();
        }
        if (device())
            device()->timing().endScope();
        return;
    }
    if (name == "scf.if") {
        bool cond = get(op->operand(0)).asInt() != 0;
        if (cond)
            runBlock(op->region(0).front());
        return;
    }
    throwUnknownOp("interpreter", op);
}

//
// memref
//

void
Executor::resolveSlice(Operation *op, std::vector<std::int64_t> &offsets,
                       std::vector<std::int64_t> &sizes)
{
    offsets = op->attr("static_offsets").asIntArray();
    sizes = op->attr("static_sizes").asIntArray();
    // Dynamic entries (-1) consume trailing index operands: first the
    // dynamic offsets in order, then the dynamic sizes.
    std::size_t operand_idx = 1;
    for (auto &offset : offsets) {
        if (offset == -1) {
            C4CAM_CHECK(operand_idx < op->numOperands(),
                        "missing dynamic offset operand");
            offset = get(op->operand(operand_idx++)).asInt();
        }
    }
    for (auto &size : sizes) {
        if (size == -1) {
            C4CAM_CHECK(operand_idx < op->numOperands(),
                        "missing dynamic size operand");
            size = get(op->operand(operand_idx++)).asInt();
        }
    }
}

void
Executor::runMemRef(Operation *op)
{
    const std::string &name = op->name();
    if (name == "memref.alloc") {
        Type t = op->result(0)->type();
        DType dtype = t.elementType().isInteger() || t.elementType().isIndex()
                          ? DType::I64
                          : DType::F32;
        set(op->result(0), RtValue(Buffer::alloc(dtype, t.shape())));
        return;
    }
    if (name == "memref.dealloc") {
        return; // storage is reference-counted
    }
    if (name == "memref.copy") {
        // Element-count preserving copy; shapes may differ (e.g. 1xN
        // row views vs N vectors).
        host::copyInto(get(op->operand(0)).asBuffer(),
                       get(op->operand(1)).asBuffer(), "memref.copy");
        return;
    }
    if (name == "memref.subview") {
        std::vector<std::int64_t> offsets;
        std::vector<std::int64_t> sizes;
        resolveSlice(op, offsets, sizes);
        BufferPtr src = get(op->operand(0)).asBuffer();
        set(op->result(0), RtValue(src->subview(offsets, sizes)));
        return;
    }
    if (name == "memref.load") {
        BufferPtr src = get(op->operand(0)).asBuffer();
        std::vector<std::int64_t> index;
        for (std::size_t i = 1; i < op->numOperands(); ++i)
            index.push_back(get(op->operand(i)).asInt());
        if (op->result(0)->type().isFloat())
            set(op->result(0), RtValue(src->at(index)));
        else
            set(op->result(0), RtValue(src->atInt(index)));
        return;
    }
    if (name == "memref.store") {
        RtValue value = get(op->operand(0));
        BufferPtr dst = get(op->operand(1)).asBuffer();
        std::vector<std::int64_t> index;
        for (std::size_t i = 2; i < op->numOperands(); ++i)
            index.push_back(get(op->operand(i)).asInt());
        dst->set(index, value.asFloat());
        return;
    }
    throwUnknownOp("interpreter", op);
}

//
// tensor + bufferization
//

void
Executor::runTensorOp(Operation *op)
{
    const std::string &name = op->name();
    if (name == "tensor.extract_slice") {
        std::vector<std::int64_t> offsets;
        std::vector<std::int64_t> sizes;
        resolveSlice(op, offsets, sizes);
        BufferPtr src = get(op->operand(0)).asBuffer();
        set(op->result(0), RtValue(src->subview(offsets, sizes)));
        return;
    }
    if (name == "tensor.empty") {
        Type t = op->result(0)->type();
        set(op->result(0), RtValue(Buffer::alloc(DType::F32, t.shape())));
        return;
    }
    if (name == "bufferization.to_memref" ||
        name == "bufferization.to_tensor") {
        set(op->result(0), get(op->operand(0)));
        return;
    }
    throwUnknownOp("interpreter", op);
}

//
// torch
//

void
Executor::runTorch(Operation *op)
{
    const std::string &name = op->name();
    if (name == torchd::kTranspose) {
        set(op->result(0),
            RtValue(transpose2d(get(op->operand(0)).asBuffer())));
        return;
    }
    if (name == torchd::kMm || name == torchd::kMatmul) {
        set(op->result(0), RtValue(matmul(get(op->operand(0)).asBuffer(),
                                          get(op->operand(1)).asBuffer())));
        return;
    }
    if (name == torchd::kSub) {
        set(op->result(0),
            RtValue(subBroadcast(get(op->operand(0)).asBuffer(),
                                 get(op->operand(1)).asBuffer())));
        return;
    }
    if (name == torchd::kDiv) {
        set(op->result(0),
            RtValue(host::elementwiseDiv(get(op->operand(0)).asBuffer(),
                                         get(op->operand(1)).asBuffer())));
        return;
    }
    if (name == torchd::kNorm) {
        int p = static_cast<int>(op->intAttrOr("p", 2));
        set(op->result(0),
            RtValue(normLastDim(get(op->operand(0)).asBuffer(), p)));
        return;
    }
    if (name == torchd::kTopk) {
        auto [values, indices] =
            topk(get(op->operand(0)).asBuffer(), op->intAttr("k"),
                 op->boolAttrOr("largest", true));
        set(op->result(0), RtValue(values));
        set(op->result(1), RtValue(indices));
        return;
    }
    throwUnknownOp("interpreter", op);
}

//
// cim
//

void
Executor::runCim(Operation *op)
{
    const std::string &name = op->name();
    if (name == cimd::kAcquire) {
        set(op->result(0), RtValue(state_.takeCimHandle()));
        return;
    }
    if (name == cimd::kRelease) {
        return;
    }
    if (name == cimd::kExecute) {
        // The body uses captured outer SSA values directly.
        std::vector<RtValue> yielded = runBlock(op->region(0).front());
        C4CAM_CHECK(yielded.size() == op->numResults(),
                    "cim.execute yield arity mismatch");
        for (std::size_t i = 0; i < yielded.size(); ++i)
            set(op->result(i), yielded[i]);
        return;
    }
    if (name == cimd::kTranspose) {
        set(op->result(0),
            RtValue(transpose2d(get(op->operand(0)).asBuffer())));
        return;
    }
    if (name == cimd::kMatmul) {
        set(op->result(0), RtValue(matmul(get(op->operand(0)).asBuffer(),
                                          get(op->operand(1)).asBuffer())));
        return;
    }
    if (name == cimd::kSub) {
        set(op->result(0),
            RtValue(subBroadcast(get(op->operand(0)).asBuffer(),
                                 get(op->operand(1)).asBuffer())));
        return;
    }
    if (name == cimd::kNorm) {
        int p = static_cast<int>(op->intAttrOr("p", 2));
        set(op->result(0),
            RtValue(normLastDim(get(op->operand(0)).asBuffer(), p)));
        return;
    }
    if (name == cimd::kDiv) {
        // 2-operand: elementwise; 3-operand (cosine): m / (qn x sn).
        BufferPtr m = get(op->operand(0)).asBuffer();
        if (op->numOperands() == 2) {
            set(op->result(0),
                RtValue(host::elementwiseDiv(
                    m, get(op->operand(1)).asBuffer())));
            return;
        }
        set(op->result(0),
            RtValue(host::cosineDiv(m, get(op->operand(1)).asBuffer(),
                                    get(op->operand(2)).asBuffer())));
        return;
    }
    if (name == cimd::kTopk) {
        std::int64_t k = op->numOperands() >= 2
                             ? get(op->operand(1)).asInt()
                             : op->intAttr("k");
        bool largest = op->boolAttrOr("largest", false);
        auto [values, indices] =
            topk(get(op->operand(0)).asBuffer(), k, largest);
        set(op->result(0), RtValue(values));
        set(op->result(1), RtValue(indices));
        if (device()) {
            std::int64_t inner = get(op->operand(0)).asBuffer()
                                     ->shape().back();
            device()->postMerge(static_cast<int>(inner));
        }
        return;
    }
    if (name == cimd::kSimilarity) {
        BufferPtr stored = get(op->operand(0)).asBuffer();
        BufferPtr query = get(op->operand(1)).asBuffer();
        std::string metric = op->strAttr("metric");
        bool partial = op->boolAttrOr("partial", false);

        // Scores: QxN matrix of dot products or (squared) distances.
        BufferPtr scores;
        bool largest = false;
        if (metric == cimd::kMetricDot) {
            scores = matmul(query, transpose2d(stored));
            largest = true;
        } else if (metric == cimd::kMetricEucl) {
            scores = normLastDim(subBroadcast(query, stored), 2);
            largest = false;
        } else { // cosine
            BufferPtr dots = matmul(query, transpose2d(stored));
            BufferPtr qn = normLastDim(query, 2);
            BufferPtr sn = normLastDim(stored, 2);
            scores = Buffer::alloc(DType::F32, dots->shape());
            for (std::int64_t q = 0; q < dots->shape()[0]; ++q)
                for (std::int64_t n = 0; n < dots->shape()[1]; ++n)
                    scores->set({q, n},
                                dots->at({q, n}) /
                                    (qn->at({q}) * sn->at({n}) + 1e-12));
            largest = true;
        }
        if (partial) {
            // Partial similarities: raw score matrix, indices are row ids.
            auto indices = Buffer::alloc(DType::I64, scores->shape());
            for (std::int64_t q = 0; q < scores->shape()[0]; ++q)
                for (std::int64_t n = 0; n < scores->shape()[1]; ++n)
                    indices->setInt({q, n}, n);
            set(op->result(0), RtValue(scores));
            set(op->result(1), RtValue(indices));
            return;
        }
        std::int64_t k = op->numOperands() >= 3
                             ? get(op->operand(2)).asInt()
                             : op->intAttrOr("k", 1);
        auto [values, indices] = topk(scores, k, largest);
        set(op->result(0), RtValue(values));
        set(op->result(1), RtValue(indices));
        return;
    }
    if (name == cimd::kMergePartial) {
        // (handle, acc, partial) -> acc + partial, elementwise.
        set(op->result(0),
            RtValue(host::elementwiseAdd(get(op->operand(1)).asBuffer(),
                                         get(op->operand(2)).asBuffer())));
        return;
    }
    throwUnknownOp("interpreter", op);
}

//
// cam
//

void
Executor::runCam(Operation *op)
{
    C4CAM_CHECK(device(), "cam ops require an attached CAM simulator");
    const std::string &name = op->name();
    if (name == camd::kAllocBank) {
        std::int64_t rows = get(op->operand(0)).asInt();
        std::int64_t cols = get(op->operand(1)).asInt();
        set(op->result(0),
            RtValue(device()->allocBank(static_cast<int>(rows),
                                        static_cast<int>(cols))));
        return;
    }
    if (name == camd::kAllocMat) {
        set(op->result(0),
            RtValue(device()->allocMat(get(op->operand(0)).asInt())));
        return;
    }
    if (name == camd::kAllocArray) {
        set(op->result(0),
            RtValue(device()->allocArray(get(op->operand(0)).asInt())));
        return;
    }
    if (name == camd::kAllocSubarray) {
        set(op->result(0),
            RtValue(device()->allocSubarray(get(op->operand(0)).asInt())));
        return;
    }
    if (name == camd::kGetSubarray) {
        set(op->result(0),
            RtValue(device()->subarrayAt(get(op->operand(0)).asInt(),
                                         get(op->operand(1)).asInt(),
                                         get(op->operand(2)).asInt(),
                                         get(op->operand(3)).asInt())));
        return;
    }
    if (name == camd::kWriteValue) {
        sim::Handle sub = get(op->operand(0)).asInt();
        BufferPtr data = get(op->operand(1)).asBuffer();
        int row_offset =
            static_cast<int>(op->intAttrOr("row_offset", 0));
        device()->writeValue(sub, data->toMatrix(), row_offset);
        return;
    }
    if (name == camd::kSearch) {
        sim::Handle sub = get(op->operand(0)).asInt();
        BufferPtr query = get(op->operand(1)).asBuffer();
        std::string kind_str = op->strAttr("kind");
        arch::SearchKind kind = kind_str == camd::kKindExact
                                    ? arch::SearchKind::Exact
                                : kind_str == camd::kKindBest
                                    ? arch::SearchKind::Best
                                    : arch::SearchKind::Range;
        bool euclidean = op->strAttr("metric") == camd::kMetricEucl;
        double threshold = 0.0;
        if (const Attribute *thr = op->findAttr("threshold"))
            threshold = thr->asFloat();
        int row_begin = static_cast<int>(op->intAttrOr("row_begin", -1));
        int row_end = static_cast<int>(op->intAttrOr("row_end", -1));
        if (op->numOperands() >= 4) {
            row_begin = static_cast<int>(get(op->operand(2)).asInt());
            row_end = static_cast<int>(get(op->operand(3)).asInt());
        }
        bool selective = op->boolAttrOr("selective", false);
        std::vector<double> qv = query->toVector();
        std::vector<float> qf(qv.begin(), qv.end());
        device()->search(sub, qf, kind, euclidean, row_begin, row_end,
                         threshold, selective);
        return;
    }
    if (name == camd::kRead) {
        sim::Handle sub = get(op->operand(0)).asInt();
        const sim::SearchResult &result = device()->read(sub);
        std::int64_t n = static_cast<std::int64_t>(result.values.size());
        auto values = Buffer::alloc(DType::F32, {n});
        auto indices = Buffer::alloc(DType::I64, {n});
        for (std::int64_t i = 0; i < n; ++i) {
            values->set({i}, result.values[static_cast<std::size_t>(i)]);
            indices->setInt({i},
                            result.indices[static_cast<std::size_t>(i)]);
        }
        set(op->result(0), RtValue(values));
        set(op->result(1), RtValue(indices));
        return;
    }
    if (name == camd::kMergePartialSubarray) {
        // (sub, acc, partial): acc += partial, flattened elementwise.
        BufferPtr acc = get(op->operand(1)).asBuffer();
        host::addInto(acc, get(op->operand(2)).asBuffer(),
                      "cam.merge_partial_subarray");
        device()->postMerge(static_cast<int>(acc->numElements()));
        set(op->result(0), get(op->operand(1)));
        return;
    }
    throwUnknownOp("interpreter", op);
}

} // namespace

//
// Interpreter
//

Interpreter::Interpreter(Module &module, sim::CamDevice *device)
    : module_(module), state_(device)
{}

std::vector<RtValue>
Interpreter::callFunction(const std::string &name,
                          const std::vector<RtValue> &args, ExecPhase phase)
{
    return callFunction(state_, name, args, phase);
}

std::vector<RtValue>
Interpreter::callFunction(ExecutionState &state, const std::string &name,
                          const std::vector<RtValue> &args,
                          ExecPhase phase) const
{
    Operation *func = module_.lookupFunction(name);
    C4CAM_CHECK(func, "no function named '" << name << "' in module");
    Block *body = &func->region(0).front();
    C4CAM_CHECK(body->numArguments() == args.size(),
                "function '" << name << "' takes " << body->numArguments()
                << " arguments, got " << args.size());
    if (phase != ExecPhase::Full)
        C4CAM_CHECK(hasPhaseMarkers(func),
                    "function '" << name << "' has no phase annotations; "
                    "phased execution requires a cam-mapped kernel");
    for (std::size_t i = 0; i < args.size(); ++i)
        state.set(body->argument(i), args[i]);
    Executor exec(state);
    return exec.runTopLevel(*body, phase);
}

bool
Interpreter::hasPhaseMarkers(Operation *func)
{
    if (!func || func->numRegions() == 0)
        return false;
    for (Operation *op : func->region(0).front().opVector())
        if (op->strAttrOr(camd::kPhaseAttr, "") == camd::kPhaseQuery)
            return true;
    return false;
}

} // namespace c4cam::rt
