#ifndef C4CAM_RUNTIME_PLANOPTIMIZER_H
#define C4CAM_RUNTIME_PLANOPTIMIZER_H

/**
 * @file
 * Peephole / dataflow pass pipeline over ExecutionPlan bytecode.
 *
 * A raw plan is a 1:1 transcription of the lowered IR: every loop
 * iteration still replays the full index-arithmetic chain, constant
 * guards, staged yield copies and per-op dispatch that the IR spelled
 * out. The optimizer rewrites the instruction streams once, at compile
 * time, without changing observable behavior -- outputs AND simulated
 * PerfReports stay bit-identical to the unoptimized plan and the
 * tree-walk interpreter (device ops, timing scopes and cost-posting
 * ops are never touched, reordered or eliminated).
 *
 * Passes, in pipeline order (each individually toggleable):
 *
 *  1. Constant folding -- slots written only by identical ConstInt
 *     instructions (across all three phase programs) are compile-time
 *     constants; integer arithmetic/compare chains over them fold to
 *     pre-decoded immediates, constant guards become unconditional
 *     jumps or fall-throughs, and provably-positive CheckPosStep
 *     disappears.
 *  2. Loop-invariant subview hoisting -- a Subview in the straight-line
 *     head of a guaranteed-at-least-once loop whose operand slots are
 *     not written inside the loop body moves above the loop head, so
 *     the spec is resolved once per entry instead of once per
 *     iteration.
 *  3. Superop fusion -- adjacent hot pairs collapse into one dispatch:
 *     compare+branch (every loop guard), add+jump (every back-edge),
 *     slice+search (the device inner loop), int/float arithmetic
 *     pairs (index chains) and staged copy pairs (loop yields). A
 *     second chain-collapse step then forwards op1's result to op2 in
 *     a register and, when no other instruction in the whole plan
 *     reads it, drops the intermediate slot write (r = -1) -- single-
 *     use index temporaries stop touching the frame at all.
 *  4. Dead-slot elimination + frame compaction -- pure instructions
 *     whose results are never read are removed (fixpoint), then the
 *     surviving slots are renumbered densely, shrinking the per-replay
 *     std::vector<RtValue> frame.
 *
 * The pipeline returns a NEW plan; the input is never mutated, so an
 * unoptimized plan stays available for differential testing
 * (DifferentialFuzzTest runs optimized vs unoptimized vs tree-walk).
 */

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace c4cam::rt {

class ExecutionPlan;

/** Per-pass toggles (all on by default). */
struct PlanOptOptions
{
    bool constantFolding = true;
    bool subviewHoisting = true;
    bool superopFusion = true;
    bool deadSlotElimination = true;

    /** Record a disassembly snapshot after every pass into
     *  PlanOptReport::passDumps (c4cam-run --plan-opt-debug). */
    bool collectDumps = false;

    bool anyEnabled() const
    {
        return constantFolding || subviewHoisting || superopFusion ||
               deadSlotElimination;
    }
};

/** What the pipeline did, for tests and --dump-plan. */
struct PlanOptReport
{
    int foldedInstructions = 0;  ///< rewritten to Const/Jump/fall-through
    int hoistedSubviews = 0;     ///< subviews moved out of loops
    int fusedSuperops = 0;       ///< instruction pairs collapsed
    int collapsedWrites = 0;     ///< chain-internal result writes dropped
    int removedInstructions = 0; ///< dead instructions eliminated
    std::int32_t slotsBefore = 0;
    std::int32_t slotsAfter = 0;

    /** (pass name, full disassembly after that pass); first entry is
     *  ("input", <unoptimized>). Only filled with collectDumps. */
    std::vector<std::pair<std::string, std::string>> passDumps;
};

class PlanOptimizer
{
  public:
    /** Run the enabled passes over a copy of @p plan. */
    static std::shared_ptr<const ExecutionPlan>
    optimize(const ExecutionPlan &plan, const PlanOptOptions &options = {},
             PlanOptReport *report = nullptr);

    /** Human-readable listing of all three phase programs, the frame
     *  layout and the decoded aux tables (c4cam-run --dump-plan). */
    static std::string disassemble(const ExecutionPlan &plan);

  private:
    /// @name Passes. Each mutates @p plan in place and returns how
    /// many rewrites it performed (see PlanOptReport).
    /// @{
    static int runConstantFolding(ExecutionPlan &plan);
    static int runSubviewHoisting(ExecutionPlan &plan);
    static int runSuperopFusion(ExecutionPlan &plan,
                                int *collapsed_writes);
    static int runDeadSlotElimination(ExecutionPlan &plan);
    /// @}

    /** Renumber every referenced slot densely; shrinks numSlots(). */
    static void compactFrame(ExecutionPlan &plan);
};

} // namespace c4cam::rt

#endif // C4CAM_RUNTIME_PLANOPTIMIZER_H
