#ifndef C4CAM_DIALECTS_CAM_CAMDIALECT_H
#define C4CAM_DIALECTS_CAM_CAMDIALECT_H

/**
 * @file
 * The cam dialect: C4CAM's novel device-level abstraction (paper
 * §III-D2).
 *
 * Programs at this level allocate slices of the CAM hierarchy
 * (bank -> mat -> array -> subarray), program subarrays with stored
 * patterns, issue searches, and read back match values/indices. The
 * mapping pass arranges these calls inside scf loops that mirror the
 * architecture hierarchy (Fig. 6 of the paper).
 */

#include "ir/Builder.h"
#include "ir/Context.h"
#include "ir/IR.h"

namespace c4cam::dialects {

/** Registers cam.* ops and the !cam.*_id handle types. */
class CamDialect : public ir::Dialect
{
  public:
    std::string name() const override { return "cam"; }
    void initialize(ir::Context &ctx) override;
};

namespace cam {

inline constexpr const char *kAllocBank = "cam.alloc_bank";
inline constexpr const char *kAllocMat = "cam.alloc_mat";
inline constexpr const char *kAllocArray = "cam.alloc_array";
inline constexpr const char *kAllocSubarray = "cam.alloc_subarray";
inline constexpr const char *kGetSubarray = "cam.get_subarray";
inline constexpr const char *kWriteValue = "cam.write_value";
inline constexpr const char *kSearch = "cam.search";
inline constexpr const char *kRead = "cam.read";
inline constexpr const char *kMergePartialSubarray =
    "cam.merge_partial_subarray";

/** Search kinds (attr "kind"): exact (EX), best (BE), range/threshold (TH). */
inline constexpr const char *kKindExact = "exact";
inline constexpr const char *kKindBest = "best";
inline constexpr const char *kKindRange = "range";

/** Distance metrics (attr "metric"). */
inline constexpr const char *kMetricHamming = "hamming";
inline constexpr const char *kMetricEucl = "eucl";

/**
 * Execution-phase marker (attr "phase") placed by cam-map on top-level
 * ops of the mapped function. Ops tagged "setup" program the device
 * (allocation + cam.write_value) and run once per execution session;
 * ops tagged "query" form the reentrant per-query search body. Untagged
 * ops run in both phases (cheap host-side constants and buffers).
 */
inline constexpr const char *kPhaseAttr = "phase";
inline constexpr const char *kPhaseSetup = "setup";
inline constexpr const char *kPhaseQuery = "query";

/** Handle types. */
ir::Type bankIdType(ir::Context &ctx);
ir::Type matIdType(ir::Context &ctx);
ir::Type arrayIdType(ir::Context &ctx);
ir::Type subarrayIdType(ir::Context &ctx);

} // namespace cam

} // namespace c4cam::dialects

#endif // C4CAM_DIALECTS_CAM_CAMDIALECT_H
