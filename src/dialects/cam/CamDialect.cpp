#include "dialects/cam/CamDialect.h"

#include "support/Error.h"

namespace c4cam::dialects {

using namespace ir;

namespace cam {

Type
bankIdType(Context &ctx)
{
    return ctx.opaqueType("cam", "bank_id");
}

Type
matIdType(Context &ctx)
{
    return ctx.opaqueType("cam", "mat_id");
}

Type
arrayIdType(Context &ctx)
{
    return ctx.opaqueType("cam", "array_id");
}

Type
subarrayIdType(Context &ctx)
{
    return ctx.opaqueType("cam", "subarray_id");
}

namespace {

void
requireHandle(Operation *op, std::size_t idx, const char *name)
{
    Type t = op->operand(idx)->type();
    C4CAM_CHECK(t.isOpaque() && t.opaqueDialect() == "cam" &&
                    t.opaqueName() == name,
                "'" << op->name() << "' operand #" << idx << " must be !cam."
                << name << ", got " << t.str());
}

} // namespace

} // namespace cam

void
CamDialect::initialize(Context &ctx)
{
    {
        // cam.alloc_bank %rows, %cols -> !cam.bank_id
        OpInfo info;
        info.name = cam::kAllocBank;
        info.minOperands = 2;
        info.maxOperands = 2;
        info.numResults = 1;
        info.verify = [](Operation *op) {
            C4CAM_CHECK(op->operand(0)->type().isIndex() &&
                            op->operand(1)->type().isIndex(),
                        "cam.alloc_bank takes (rows, cols) index operands");
        };
        ctx.registerOp(std::move(info));
    }
    {
        OpInfo info;
        info.name = cam::kAllocMat;
        info.minOperands = 1;
        info.maxOperands = 1;
        info.numResults = 1;
        info.verify = [](Operation *op) {
            cam::requireHandle(op, 0, "bank_id");
        };
        ctx.registerOp(std::move(info));
    }
    {
        OpInfo info;
        info.name = cam::kAllocArray;
        info.minOperands = 1;
        info.maxOperands = 1;
        info.numResults = 1;
        info.verify = [](Operation *op) {
            cam::requireHandle(op, 0, "mat_id");
        };
        ctx.registerOp(std::move(info));
    }
    {
        OpInfo info;
        info.name = cam::kAllocSubarray;
        info.minOperands = 1;
        info.maxOperands = 1;
        info.numResults = 1;
        info.verify = [](Operation *op) {
            cam::requireHandle(op, 0, "array_id");
        };
        ctx.registerOp(std::move(info));
    }
    {
        // cam.get_subarray %bank, %mat, %array, %sub -> !cam.subarray_id
        // References an already-allocated subarray by its hierarchy
        // coordinates (used by the query loop after the setup loop has
        // programmed the device).
        OpInfo info;
        info.name = cam::kGetSubarray;
        info.minOperands = 4;
        info.maxOperands = 4;
        info.numResults = 1;
        info.verify = [](Operation *op) {
            for (std::size_t i = 0; i < 4; ++i)
                C4CAM_CHECK(op->operand(i)->type().isIndex(),
                            "cam.get_subarray takes index coordinates");
        };
        ctx.registerOp(std::move(info));
    }
    {
        // cam.write_value %subarray, %data {row_batch = N}
        OpInfo info;
        info.name = cam::kWriteValue;
        info.minOperands = 2;
        info.maxOperands = 2;
        info.numResults = 0;
        info.verify = [](Operation *op) {
            cam::requireHandle(op, 0, "subarray_id");
            C4CAM_CHECK(op->operand(1)->type().isMemRef(),
                        "cam.write_value data must be a memref");
        };
        ctx.registerOp(std::move(info));
    }
    {
        // cam.search %subarray, %query [, %row_begin, %row_end]
        //            {kind, metric, threshold}
        // The optional index operands give the selective-search row
        // window [27]; without them the full subarray is active.
        OpInfo info;
        info.name = cam::kSearch;
        info.minOperands = 2;
        info.maxOperands = 4;
        info.numResults = 0;
        info.verify = [](Operation *op) {
            cam::requireHandle(op, 0, "subarray_id");
            C4CAM_CHECK(op->operand(1)->type().isMemRef(),
                        "cam.search query must be a memref");
            std::string kind = op->strAttrOr("kind", "");
            C4CAM_CHECK(kind == cam::kKindExact || kind == cam::kKindBest ||
                            kind == cam::kKindRange,
                        "cam.search kind must be exact/best/range, got '"
                        << kind << "'");
            std::string metric = op->strAttrOr("metric", "");
            C4CAM_CHECK(metric == cam::kMetricHamming ||
                            metric == cam::kMetricEucl,
                        "cam.search metric must be hamming/eucl, got '"
                        << metric << "'");
        };
        ctx.registerOp(std::move(info));
    }
    {
        // cam.read %subarray {kind} -> (values, indices)
        OpInfo info;
        info.name = cam::kRead;
        info.minOperands = 1;
        info.maxOperands = 1;
        info.numResults = 2;
        info.verify = [](Operation *op) {
            cam::requireHandle(op, 0, "subarray_id");
            C4CAM_CHECK(op->result(0)->type().isMemRef() &&
                            op->result(1)->type().isMemRef(),
                        "cam.read returns (values, indices) memrefs");
        };
        ctx.registerOp(std::move(info));
    }
    {
        // cam.merge_partial_subarray %sub, %acc, %partial {direction}
        OpInfo info;
        info.name = cam::kMergePartialSubarray;
        info.minOperands = 3;
        info.maxOperands = 3;
        info.numResults = 1;
        info.verify = [](Operation *op) {
            cam::requireHandle(op, 0, "subarray_id");
        };
        ctx.registerOp(std::move(info));
    }
}

} // namespace c4cam::dialects
