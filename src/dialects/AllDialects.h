#ifndef C4CAM_DIALECTS_ALLDIALECTS_H
#define C4CAM_DIALECTS_ALLDIALECTS_H

/**
 * @file
 * Convenience loader for every dialect in the C4CAM stack.
 */

#include "dialects/BuiltinDialect.h"
#include "dialects/cam/CamDialect.h"
#include "dialects/cim/CimDialect.h"
#include "dialects/crossbar/CrossbarDialect.h"
#include "dialects/std/StdDialects.h"
#include "dialects/torch/TorchDialect.h"

namespace c4cam::dialects {

/** Load builtin + arith/scf/memref/tensor + torch + cim + cam. */
inline void
loadAllDialects(ir::Context &ctx)
{
    ctx.loadDialect<BuiltinDialect>();
    ctx.loadDialect<ArithDialect>();
    ctx.loadDialect<ScfDialect>();
    ctx.loadDialect<MemRefDialect>();
    ctx.loadDialect<TensorDialect>();
    ctx.loadDialect<BufferizationDialect>();
    ctx.loadDialect<TorchDialect>();
    ctx.loadDialect<CimDialect>();
    ctx.loadDialect<CamDialect>();
    ctx.loadDialect<CrossbarDialect>();
}

} // namespace c4cam::dialects

#endif // C4CAM_DIALECTS_ALLDIALECTS_H
