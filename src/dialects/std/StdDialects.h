#ifndef C4CAM_DIALECTS_STD_STDDIALECTS_H
#define C4CAM_DIALECTS_STD_STDDIALECTS_H

/**
 * @file
 * Standard support dialects: arith, scf, memref, tensor, bufferization.
 *
 * These are the target-independent dialects the C4CAM pipeline lowers
 * into: loops (scf), scalar arithmetic (arith), buffers (memref) and
 * tensor slicing (tensor).
 */

#include "ir/Builder.h"
#include "ir/Context.h"
#include "ir/IR.h"

namespace c4cam::dialects {

/** arith.constant and scalar arithmetic ops. */
class ArithDialect : public ir::Dialect
{
  public:
    std::string name() const override { return "arith"; }
    void initialize(ir::Context &ctx) override;
};

/** scf.for / scf.parallel / scf.yield structured control flow. */
class ScfDialect : public ir::Dialect
{
  public:
    std::string name() const override { return "scf"; }
    void initialize(ir::Context &ctx) override;
};

/** memref.alloc / memref.copy / memref.subview buffers. */
class MemRefDialect : public ir::Dialect
{
  public:
    std::string name() const override { return "memref"; }
    void initialize(ir::Context &ctx) override;
};

/** tensor.extract_slice and friends. */
class TensorDialect : public ir::Dialect
{
  public:
    std::string name() const override { return "tensor"; }
    void initialize(ir::Context &ctx) override;
};

/** bufferization.to_memref / to_tensor materializations. */
class BufferizationDialect : public ir::Dialect
{
  public:
    std::string name() const override { return "bufferization"; }
    void initialize(ir::Context &ctx) override;
};

namespace scf {

/**
 * Create `scf.for %iv = %lb to %ub step %step` with an empty single-block
 * body (the induction variable is the block argument).
 * @return the loop op; use loopBody() to fill it.
 */
ir::Operation *createFor(ir::OpBuilder &builder, ir::Value *lb,
                         ir::Value *ub, ir::Value *step);

/**
 * Create `scf.parallel` over one dimension with a level tag used by the
 * CAM mapping ("bank", "mat", "array", "subarray").
 */
ir::Operation *createParallel(ir::OpBuilder &builder, ir::Value *lb,
                              ir::Value *ub, ir::Value *step,
                              const std::string &level);

/** Body block of an scf.for / scf.parallel. */
ir::Block *loopBody(ir::Operation *loop);

/** Induction variable of an scf.for / scf.parallel. */
ir::Value *inductionVar(ir::Operation *loop);

} // namespace scf

} // namespace c4cam::dialects

#endif // C4CAM_DIALECTS_STD_STDDIALECTS_H
