#include "dialects/std/StdDialects.h"

#include "support/Error.h"

namespace c4cam::dialects {

using namespace ir;

namespace {

/** Register a simple fixed-arity op. */
void
simpleOp(Context &ctx, const std::string &name, int operands, int results,
         bool terminator = false)
{
    OpInfo info;
    info.name = name;
    info.minOperands = operands;
    info.maxOperands = operands;
    info.numResults = results;
    info.isTerminator = terminator;
    ctx.registerOp(std::move(info));
}

} // namespace

void
ArithDialect::initialize(Context &ctx)
{
    {
        OpInfo info;
        info.name = "arith.constant";
        info.maxOperands = 0;
        info.numResults = 1;
        info.verify = [](Operation *op) {
            C4CAM_CHECK(op->hasAttr("value"),
                        "arith.constant requires a value attribute");
        };
        ctx.registerOp(std::move(info));
    }
    // Integer/index arithmetic.
    for (const char *name : {"arith.addi", "arith.subi", "arith.muli",
                             "arith.divsi", "arith.remsi", "arith.minsi",
                             "arith.maxsi"})
        simpleOp(ctx, name, 2, 1);
    // Floating-point arithmetic.
    for (const char *name :
         {"arith.addf", "arith.subf", "arith.mulf", "arith.divf",
          "arith.minimumf", "arith.maximumf"})
        simpleOp(ctx, name, 2, 1);
    {
        OpInfo info;
        info.name = "arith.cmpi";
        info.minOperands = 2;
        info.maxOperands = 2;
        info.numResults = 1;
        info.verify = [](Operation *op) {
            C4CAM_CHECK(op->hasAttr("predicate"),
                        "arith.cmpi requires a predicate attribute");
        };
        ctx.registerOp(std::move(info));
    }
    simpleOp(ctx, "arith.cmpf", 2, 1);
    simpleOp(ctx, "arith.select", 3, 1);
    simpleOp(ctx, "arith.index_cast", 1, 1);
    simpleOp(ctx, "arith.sitofp", 1, 1);
    simpleOp(ctx, "arith.fptosi", 1, 1);
    // Transcendentals live in the math dialect upstream; registered
    // here alongside arith for simplicity.
    simpleOp(ctx, "math.sqrt", 1, 1);
}

void
ScfDialect::initialize(Context &ctx)
{
    {
        // scf.for %iv = %lb to %ub step %step iter_args(...)
        OpInfo info;
        info.name = "scf.for";
        info.minOperands = 3;
        info.numResults = -1;
        info.numRegions = 1;
        info.verify = [](Operation *op) {
            C4CAM_CHECK(op->region(0).numBlocks() == 1,
                        "scf.for requires exactly one body block");
            Block &body = op->region(0).front();
            C4CAM_CHECK(body.numArguments() >= 1,
                        "scf.for body needs an induction variable argument");
            C4CAM_CHECK(body.numArguments() == op->numOperands() - 3 + 1,
                        "scf.for iter_args/block-arg mismatch");
        };
        ctx.registerOp(std::move(info));
    }
    {
        OpInfo info;
        info.name = "scf.parallel";
        info.minOperands = 3;
        info.maxOperands = 3;
        info.numResults = 0;
        info.numRegions = 1;
        info.verify = [](Operation *op) {
            C4CAM_CHECK(op->region(0).numBlocks() == 1,
                        "scf.parallel requires exactly one body block");
            C4CAM_CHECK(op->region(0).front().numArguments() == 1,
                        "scf.parallel body takes exactly the induction var");
        };
        ctx.registerOp(std::move(info));
    }
    {
        // scf.if %cond { ... } (then-only form, no results)
        OpInfo info;
        info.name = "scf.if";
        info.minOperands = 1;
        info.maxOperands = 1;
        info.numResults = 0;
        info.numRegions = 1;
        info.verify = [](Operation *op) {
            C4CAM_CHECK(op->operand(0)->type().isI1(),
                        "scf.if condition must be i1");
        };
        ctx.registerOp(std::move(info));
    }
    {
        OpInfo info;
        info.name = "scf.yield";
        info.numResults = 0;
        info.isTerminator = true;
        ctx.registerOp(std::move(info));
    }
}

void
MemRefDialect::initialize(Context &ctx)
{
    {
        OpInfo info;
        info.name = "memref.alloc";
        info.maxOperands = 0;
        info.numResults = 1;
        info.verify = [](Operation *op) {
            C4CAM_CHECK(op->result(0)->type().isMemRef(),
                        "memref.alloc must return a memref");
        };
        ctx.registerOp(std::move(info));
    }
    simpleOp(ctx, "memref.dealloc", 1, 0);
    simpleOp(ctx, "memref.copy", 2, 0);
    {
        // memref.subview %src with static offsets/sizes attrs; dynamic
        // offsets are trailing index operands substituted for the -1
        // entries of static_offsets.
        OpInfo info;
        info.name = "memref.subview";
        info.minOperands = 1;
        info.numResults = 1;
        info.verify = [](Operation *op) {
            C4CAM_CHECK(op->hasAttr("static_offsets") &&
                            op->hasAttr("static_sizes"),
                        "memref.subview requires static_offsets and "
                        "static_sizes attributes");
        };
        ctx.registerOp(std::move(info));
    }
    {
        // memref.load %base[%indices...]
        OpInfo info;
        info.name = "memref.load";
        info.minOperands = 1;
        info.numResults = 1;
        ctx.registerOp(std::move(info));
    }
    {
        // memref.store %value, %base[%indices...]
        OpInfo info;
        info.name = "memref.store";
        info.minOperands = 2;
        info.numResults = 0;
        ctx.registerOp(std::move(info));
    }
}

void
TensorDialect::initialize(Context &ctx)
{
    {
        // tensor.extract_slice %src [dynamic offsets...]
        // attrs: static_offsets, static_sizes, static_strides (-1 = dynamic)
        OpInfo info;
        info.name = "tensor.extract_slice";
        info.minOperands = 1;
        info.numResults = 1;
        info.verify = [](Operation *op) {
            C4CAM_CHECK(op->hasAttr("static_offsets") &&
                            op->hasAttr("static_sizes"),
                        "tensor.extract_slice requires static_offsets and "
                        "static_sizes attributes");
            C4CAM_CHECK(op->operand(0)->type().isTensor(),
                        "tensor.extract_slice source must be a tensor");
        };
        ctx.registerOp(std::move(info));
    }
    {
        OpInfo info;
        info.name = "tensor.empty";
        info.maxOperands = 0;
        info.numResults = 1;
        ctx.registerOp(std::move(info));
    }
    simpleOp(ctx, "tensor.insert_slice", 2, 1);
}

void
BufferizationDialect::initialize(Context &ctx)
{
    simpleOp(ctx, "bufferization.to_memref", 1, 1);
    simpleOp(ctx, "bufferization.to_tensor", 1, 1);
}

namespace scf {

Operation *
createFor(OpBuilder &builder, Value *lb, Value *ub, Value *step)
{
    Operation *loop =
        builder.create("scf.for", {lb, ub, step}, {}, {}, 1);
    Block &body = loop->region(0).addBlock();
    body.addArgument(builder.context().indexType());
    return loop;
}

Operation *
createParallel(OpBuilder &builder, Value *lb, Value *ub, Value *step,
               const std::string &level)
{
    Operation *loop = builder.create(
        "scf.parallel", {lb, ub, step},
        {}, {{"level", Attribute(level)}}, 1);
    Block &body = loop->region(0).addBlock();
    body.addArgument(builder.context().indexType());
    return loop;
}

Block *
loopBody(Operation *loop)
{
    C4CAM_ASSERT(loop->name() == "scf.for" ||
                     loop->name() == "scf.parallel",
                 "loopBody on non-loop op '" << loop->name() << "'");
    return &loop->region(0).front();
}

Value *
inductionVar(Operation *loop)
{
    return loopBody(loop)->argument(0);
}

} // namespace scf

} // namespace c4cam::dialects
