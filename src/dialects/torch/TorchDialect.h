#ifndef C4CAM_DIALECTS_TORCH_TORCHDIALECT_H
#define C4CAM_DIALECTS_TORCH_TORCHDIALECT_H

/**
 * @file
 * The torch dialect: the ATen-level entry point of the C4CAM pipeline.
 *
 * Mirrors the subset of torch-mlir the paper consumes, extended (as in
 * §III-C of the paper) with the search primitives `norm` and `topk` that
 * the stock frontend lacks.
 */

#include "ir/Builder.h"
#include "ir/Context.h"
#include "ir/IR.h"

namespace c4cam::dialects {

/**
 * Registers the torch.aten.* ops used by search workloads:
 *  - torch.aten.transpose.int  (tensor) {dim0, dim1} -> tensor
 *  - torch.aten.mm / matmul    (a, b) -> tensor
 *  - torch.aten.sub            (a, b) -> tensor (broadcasting)
 *  - torch.aten.div            (a, b) -> tensor
 *  - torch.aten.norm           (t) {p, dim} -> tensor     [frontend ext.]
 *  - torch.aten.topk           (t) {k, dim, largest} -> values, indices
 */
class TorchDialect : public ir::Dialect
{
  public:
    std::string name() const override { return "torch"; }
    void initialize(ir::Context &ctx) override;
};

namespace torch {

/** Op-name constants used by the conversions. */
inline constexpr const char *kTranspose = "torch.aten.transpose.int";
inline constexpr const char *kMm = "torch.aten.mm";
inline constexpr const char *kMatmul = "torch.aten.matmul";
inline constexpr const char *kSub = "torch.aten.sub";
inline constexpr const char *kDiv = "torch.aten.div";
inline constexpr const char *kNorm = "torch.aten.norm";
inline constexpr const char *kTopk = "torch.aten.topk";

} // namespace torch

} // namespace c4cam::dialects

#endif // C4CAM_DIALECTS_TORCH_TORCHDIALECT_H
