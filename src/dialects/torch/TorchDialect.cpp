#include "dialects/torch/TorchDialect.h"

#include "support/Error.h"

namespace c4cam::dialects {

using namespace ir;

namespace {

void
requireTensorOperands(Operation *op)
{
    for (std::size_t i = 0; i < op->numOperands(); ++i)
        C4CAM_CHECK(op->operand(i)->type().isTensor(),
                    "'" << op->name() << "' operand #" << i
                    << " must be a tensor, got "
                    << op->operand(i)->type().str());
}

} // namespace

void
TorchDialect::initialize(Context &ctx)
{
    {
        OpInfo info;
        info.name = torch::kTranspose;
        info.minOperands = 1;
        info.maxOperands = 1;
        info.numResults = 1;
        info.verify = [](Operation *op) {
            requireTensorOperands(op);
            C4CAM_CHECK(op->hasAttr("dim0") && op->hasAttr("dim1"),
                        "transpose requires dim0/dim1 attributes");
        };
        ctx.registerOp(std::move(info));
    }
    for (const char *name : {torch::kMm, torch::kMatmul, torch::kSub,
                             torch::kDiv}) {
        OpInfo info;
        info.name = name;
        info.minOperands = 2;
        info.maxOperands = 2;
        info.numResults = 1;
        info.verify = requireTensorOperands;
        ctx.registerOp(std::move(info));
    }
    {
        // Frontend extension (§III-C): vector norm along a dimension.
        OpInfo info;
        info.name = torch::kNorm;
        info.minOperands = 1;
        info.maxOperands = 1;
        info.numResults = 1;
        info.verify = [](Operation *op) {
            requireTensorOperands(op);
            C4CAM_CHECK(op->intAttrOr("p", 2) == 2 ||
                            op->intAttrOr("p", 2) == 1,
                        "norm only supports p in {1, 2}");
        };
        ctx.registerOp(std::move(info));
    }
    {
        // Frontend extension (§III-C): top-k along a dimension.
        OpInfo info;
        info.name = torch::kTopk;
        info.minOperands = 1;
        info.maxOperands = 1;
        info.numResults = 2;
        info.verify = [](Operation *op) {
            requireTensorOperands(op);
            C4CAM_CHECK(op->hasAttr("k"), "topk requires a k attribute");
            C4CAM_CHECK(op->intAttr("k") >= 1, "topk k must be >= 1");
        };
        ctx.registerOp(std::move(info));
    }
}

} // namespace c4cam::dialects
