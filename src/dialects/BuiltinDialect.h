#ifndef C4CAM_DIALECTS_BUILTINDIALECT_H
#define C4CAM_DIALECTS_BUILTINDIALECT_H

/**
 * @file
 * Builtin structural ops: builtin.module, func.func, func.return.
 */

#include "ir/Builder.h"
#include "ir/Context.h"
#include "ir/IR.h"

namespace c4cam::dialects {

/** Registers builtin.module / func.func / func.return. */
class BuiltinDialect : public ir::Dialect
{
  public:
    std::string name() const override { return "builtin"; }
    void initialize(ir::Context &ctx) override;
};

/**
 * Create `func.func @name` with entry-block arguments of @p arg_types,
 * inserted at the end of @p module's body.
 * @return the function op; its entry block is ready for insertion.
 */
ir::Operation *createFunction(ir::Module &module, const std::string &name,
                              const std::vector<ir::Type> &arg_types);

/** The entry block of a func.func. */
ir::Block *funcBody(ir::Operation *func);

} // namespace c4cam::dialects

#endif // C4CAM_DIALECTS_BUILTINDIALECT_H
