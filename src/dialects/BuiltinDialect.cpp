#include "dialects/BuiltinDialect.h"

#include "support/Error.h"

namespace c4cam::dialects {

using namespace ir;

void
BuiltinDialect::initialize(Context &ctx)
{
    {
        OpInfo info;
        info.name = kModuleOpName;
        info.maxOperands = 0;
        info.numResults = 0;
        info.numRegions = 1;
        ctx.registerOp(std::move(info));
    }
    {
        OpInfo info;
        info.name = kFuncOpName;
        info.maxOperands = 0;
        info.numResults = 0;
        info.numRegions = 1;
        info.verify = [](Operation *op) {
            C4CAM_CHECK(op->hasAttr("sym_name"),
                        "func.func requires a sym_name attribute");
        };
        ctx.registerOp(std::move(info));
    }
    {
        OpInfo info;
        info.name = kReturnOpName;
        info.numResults = 0;
        info.isTerminator = true;
        ctx.registerOp(std::move(info));
    }
}

Operation *
createFunction(Module &module, const std::string &name,
               const std::vector<Type> &arg_types)
{
    OpBuilder builder(module.context());
    builder.setInsertionPointToEnd(module.body());
    Operation *func = builder.create(
        kFuncOpName, {}, {}, {{"sym_name", Attribute(name)}}, 1);
    Block &entry = func->region(0).addBlock();
    for (Type t : arg_types)
        entry.addArgument(t);
    return func;
}

Block *
funcBody(Operation *func)
{
    C4CAM_ASSERT(func->name() == kFuncOpName,
                 "funcBody on non-func op '" << func->name() << "'");
    return &func->region(0).front();
}

} // namespace c4cam::dialects
