#ifndef C4CAM_DIALECTS_CROSSBAR_CROSSBARDIALECT_H
#define C4CAM_DIALECTS_CROSSBAR_CROSSBARDIALECT_H

/**
 * @file
 * The crossbar dialect: the sibling device abstraction Fig. 3 places
 * next to `cam` ("crossbar: memristive crossbar arrays").
 *
 * C4CAM's cim abstraction is device-agnostic; execution blocks that
 * contain arithmetic (rather than search) kernels would lower to this
 * dialect in a crossbar-equipped system. The ops model the standard
 * analog-MVM programming interface: program a conductance matrix, then
 * drive input voltages and sample the bit-line currents. Included to
 * demonstrate the retargetability seam; a crossbar timing/energy
 * backend is out of scope for this reproduction (the paper's
 * evaluation never exercises one either).
 */

#include "ir/Context.h"

namespace c4cam::dialects {

/**
 * Registers the crossbar.* ops:
 *  - crossbar.alloc_tile %rows, %cols -> !crossbar.tile_id
 *  - crossbar.program_matrix %tile, %weights : (tile, memref) -> ()
 *  - crossbar.mvm %tile, %input -> memref   (analog matrix-vector mul)
 *  - crossbar.release %tile
 */
class CrossbarDialect : public ir::Dialect
{
  public:
    std::string name() const override { return "crossbar"; }
    void initialize(ir::Context &ctx) override;
};

namespace crossbar {

inline constexpr const char *kAllocTile = "crossbar.alloc_tile";
inline constexpr const char *kProgramMatrix = "crossbar.program_matrix";
inline constexpr const char *kMvm = "crossbar.mvm";
inline constexpr const char *kRelease = "crossbar.release";

ir::Type tileIdType(ir::Context &ctx);

} // namespace crossbar

} // namespace c4cam::dialects

#endif // C4CAM_DIALECTS_CROSSBAR_CROSSBARDIALECT_H
