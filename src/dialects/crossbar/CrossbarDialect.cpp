#include "dialects/crossbar/CrossbarDialect.h"

#include "ir/IR.h"
#include "support/Error.h"

namespace c4cam::dialects {

using namespace ir;

namespace crossbar {

Type
tileIdType(Context &ctx)
{
    return ctx.opaqueType("crossbar", "tile_id");
}

} // namespace crossbar

void
CrossbarDialect::initialize(Context &ctx)
{
    {
        OpInfo info;
        info.name = crossbar::kAllocTile;
        info.minOperands = 2;
        info.maxOperands = 2;
        info.numResults = 1;
        info.verify = [](Operation *op) {
            C4CAM_CHECK(op->operand(0)->type().isIndex() &&
                            op->operand(1)->type().isIndex(),
                        "crossbar.alloc_tile takes (rows, cols)");
        };
        ctx.registerOp(std::move(info));
    }
    {
        OpInfo info;
        info.name = crossbar::kProgramMatrix;
        info.minOperands = 2;
        info.maxOperands = 2;
        info.numResults = 0;
        info.verify = [](Operation *op) {
            Type t = op->operand(0)->type();
            C4CAM_CHECK(t.isOpaque() && t.opaqueName() == "tile_id",
                        "program_matrix operand #0 must be a tile");
            C4CAM_CHECK(op->operand(1)->type().isMemRef(),
                        "program_matrix weights must be a memref");
        };
        ctx.registerOp(std::move(info));
    }
    {
        OpInfo info;
        info.name = crossbar::kMvm;
        info.minOperands = 2;
        info.maxOperands = 2;
        info.numResults = 1;
        info.verify = [](Operation *op) {
            Type t = op->operand(0)->type();
            C4CAM_CHECK(t.isOpaque() && t.opaqueName() == "tile_id",
                        "mvm operand #0 must be a tile");
        };
        ctx.registerOp(std::move(info));
    }
    {
        OpInfo info;
        info.name = crossbar::kRelease;
        info.minOperands = 1;
        info.maxOperands = 1;
        info.numResults = 0;
        ctx.registerOp(std::move(info));
    }
}

} // namespace c4cam::dialects
