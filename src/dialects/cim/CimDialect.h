#ifndef C4CAM_DIALECTS_CIM_CIMDIALECT_H
#define C4CAM_DIALECTS_CIM_CIMDIALECT_H

/**
 * @file
 * The cim dialect: device-agnostic compute-in-memory abstraction.
 *
 * Extends the CINM programming model (acquire / execute / release) with
 * the analyses C4CAM needs for CAM devices: similarity ops and partial-
 * result merging (paper §III-D1). `cim.execute` carries a region whose
 * body runs on the acquired device; `cim.yield` terminates it.
 */

#include "ir/Builder.h"
#include "ir/Context.h"
#include "ir/IR.h"

namespace c4cam::dialects {

/** Registers the cim.* operations. */
class CimDialect : public ir::Dialect
{
  public:
    std::string name() const override { return "cim"; }
    void initialize(ir::Context &ctx) override;
};

namespace cim {

inline constexpr const char *kAcquire = "cim.acquire";
inline constexpr const char *kExecute = "cim.execute";
inline constexpr const char *kRelease = "cim.release";
inline constexpr const char *kYield = "cim.yield";
inline constexpr const char *kTranspose = "cim.transpose";
inline constexpr const char *kMatmul = "cim.matmul";
inline constexpr const char *kSub = "cim.sub";
inline constexpr const char *kDiv = "cim.div";
inline constexpr const char *kNorm = "cim.norm";
inline constexpr const char *kTopk = "cim.topk";
inline constexpr const char *kSimilarity = "cim.similarity";
inline constexpr const char *kMergePartial = "cim.merge_partial";

/** Similarity metrics supported by cim.similarity (attr "metric"). */
inline constexpr const char *kMetricDot = "dot";
inline constexpr const char *kMetricEucl = "eucl";
inline constexpr const char *kMetricCos = "cos";

/**
 * Build `%h = cim.acquire`, `%r = cim.execute(%h, captures...)` with an
 * empty body block, and `cim.release %h` after it.
 * @return the execute op (its body is still empty; add ops + cim.yield).
 */
ir::Operation *createAcquireExecuteRelease(
    ir::OpBuilder &builder, const std::vector<ir::Value *> &captures,
    const std::vector<ir::Type> &result_types);

/** Body block of a cim.execute op. */
ir::Block *executeBody(ir::Operation *execute);

} // namespace cim

} // namespace c4cam::dialects

#endif // C4CAM_DIALECTS_CIM_CIMDIALECT_H
