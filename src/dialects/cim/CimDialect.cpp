#include "dialects/cim/CimDialect.h"

#include "support/Error.h"

namespace c4cam::dialects {

using namespace ir;

void
CimDialect::initialize(Context &ctx)
{
    {
        OpInfo info;
        info.name = cim::kAcquire;
        info.maxOperands = 0;
        info.numResults = 1;
        info.verify = [](Operation *op) {
            C4CAM_CHECK(op->result(0)->type().isIndex(),
                        "cim.acquire returns an index handle");
        };
        ctx.registerOp(std::move(info));
    }
    {
        OpInfo info;
        info.name = cim::kExecute;
        info.minOperands = 1; // device handle + captures
        info.numResults = -1;
        info.numRegions = 1;
        info.verify = [](Operation *op) {
            C4CAM_CHECK(op->operand(0)->type().isIndex(),
                        "cim.execute operand #0 must be the device handle");
            C4CAM_CHECK(op->region(0).numBlocks() == 1,
                        "cim.execute requires a single body block");
            Block &body = op->region(0).front();
            C4CAM_CHECK(!body.empty() &&
                            body.back()->name() == cim::kYield,
                        "cim.execute body must end with cim.yield");
            C4CAM_CHECK(body.back()->numOperands() == op->numResults(),
                        "cim.yield operand count must match cim.execute "
                        "results");
        };
        ctx.registerOp(std::move(info));
    }
    {
        OpInfo info;
        info.name = cim::kRelease;
        info.minOperands = 1;
        info.maxOperands = 1;
        info.numResults = 0;
        ctx.registerOp(std::move(info));
    }
    {
        OpInfo info;
        info.name = cim::kYield;
        info.numResults = 0;
        info.isTerminator = true;
        ctx.registerOp(std::move(info));
    }
    {
        OpInfo info;
        info.name = cim::kTranspose;
        info.minOperands = 1;
        info.maxOperands = 1;
        info.numResults = 1;
        ctx.registerOp(std::move(info));
    }
    for (const char *name : {cim::kMatmul, cim::kSub}) {
        OpInfo info;
        info.name = name;
        info.minOperands = 2;
        info.maxOperands = 2;
        info.numResults = 1;
        ctx.registerOp(std::move(info));
    }
    {
        // cim.div supports the 3-operand cosine form div(v4, v2, v1).
        OpInfo info;
        info.name = cim::kDiv;
        info.minOperands = 2;
        info.maxOperands = 3;
        info.numResults = 1;
        ctx.registerOp(std::move(info));
    }
    {
        OpInfo info;
        info.name = cim::kNorm;
        info.minOperands = 1;
        info.maxOperands = 1;
        info.numResults = 1;
        ctx.registerOp(std::move(info));
    }
    {
        // cim.topk %t, %k : values, indices
        OpInfo info;
        info.name = cim::kTopk;
        info.minOperands = 1;
        info.maxOperands = 2;
        info.numResults = 2;
        ctx.registerOp(std::move(info));
    }
    {
        // cim.similarity {metric} %stored, %query, %k -> values, indices
        OpInfo info;
        info.name = cim::kSimilarity;
        info.minOperands = 2;
        info.maxOperands = 3;
        info.numResults = 2;
        info.verify = [](Operation *op) {
            std::string metric = op->strAttrOr("metric", "");
            C4CAM_CHECK(metric == cim::kMetricDot ||
                            metric == cim::kMetricEucl ||
                            metric == cim::kMetricCos,
                        "cim.similarity metric must be dot/eucl/cos, got '"
                        << metric << "'");
        };
        ctx.registerOp(std::move(info));
    }
    {
        // cim.merge_partial {what, kind, direction} %handle, %acc, %partial
        OpInfo info;
        info.name = cim::kMergePartial;
        info.minOperands = 3;
        info.maxOperands = 3;
        info.numResults = 1;
        info.verify = [](Operation *op) {
            std::string dir = op->strAttrOr("direction", "horizontal");
            C4CAM_CHECK(dir == "horizontal" || dir == "vertical",
                        "merge_partial direction must be "
                        "horizontal/vertical");
        };
        ctx.registerOp(std::move(info));
    }
}

namespace cim {

Operation *
createAcquireExecuteRelease(OpBuilder &builder,
                            const std::vector<Value *> &captures,
                            const std::vector<Type> &result_types)
{
    Value *handle =
        builder.create(kAcquire, {}, {builder.context().indexType()})
            ->result(0);
    std::vector<Value *> operands = {handle};
    operands.insert(operands.end(), captures.begin(), captures.end());
    Operation *execute =
        builder.create(kExecute, operands, result_types, {}, 1);
    execute->region(0).addBlock();
    builder.create(kRelease, {handle}, {});
    return execute;
}

Block *
executeBody(Operation *execute)
{
    C4CAM_ASSERT(execute->name() == kExecute,
                 "executeBody on '" << execute->name() << "'");
    return &execute->region(0).front();
}

} // namespace cim

} // namespace c4cam::dialects
