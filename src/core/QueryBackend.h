#ifndef C4CAM_CORE_QUERYBACKEND_H
#define C4CAM_CORE_QUERYBACKEND_H

/**
 * @file
 * The serving seam: "how a query executes" vs "which hardware
 * instance executes it".
 *
 * AsyncServingEngine used to reach into ServingEngine through a friend
 * declaration to call its private serve()/serveFusedChunk() primitives
 * -- which welded the async front-end to exactly one backend shape (a
 * replica pool over one programmed device). QueryBackend replaces that
 * coupling with an interface: anything that can validate a query,
 * serve it (optionally as part of a fused chunk) and account for it
 * can sit behind the bounded queue. Three implementations exist:
 *
 *  - ServingEngine: N cloned replicas of one programmed device
 *    (core/ServingEngine.h);
 *  - SingleSessionBackend: one ExecutionSession behind a mutex --
 *    the minimal single-device backend (core/SessionBackend.h);
 *  - ShardedEngine: the stored-vector axis partitioned across M
 *    programmed devices with scatter-gather top-k merge
 *    (core/ShardedEngine.h).
 *
 * Contract highlights:
 *  - serve()/serveFusedChunk() may assume validateQuery() passed for
 *    every query (the async front-end validates at admission);
 *    implementations may still re-check cheaply.
 *  - serveFusedChunk() serves queries [begin, end) inside one fused
 *    accounting window; on failure it must record NOTHING in stats()
 *    (the caller falls back to per-query serve()).
 *  - With tracing enabled and a null span context, serve() owns the
 *    query's root "query" span; with a caller-provided context it
 *    parents its spans under ctx->parentSpanId instead and the caller
 *    owns the root.
 *  - Every implementation must be thread-safe for concurrent serve
 *    calls (concurrency() says how many make progress in parallel).
 */

#include <cstdint>
#include <vector>

#include "core/ExecutionSession.h"
#include "core/PlanCache.h"
#include "runtime/Buffer.h"
#include "sim/Timing.h"
#include "support/Trace.h"

namespace c4cam::core {

/** Aggregate serving metrics over all queries served so far. */
struct ServingStats
{
    std::int64_t queriesServed = 0;

    /** Wall-clock seconds from the first submission to the last
     *  completion (0 when nothing was served). */
    double wallSeconds = 0.0;

    /** Host throughput: queriesServed / wallSeconds. */
    double qps = 0.0;

    /// @name Host wall-clock latency percentiles per query (us),
    /// over a bounded window of the most recent queries (a long-lived
    /// engine keeps no unbounded per-query history)
    /// @{
    double p50LatencyUs = 0.0;
    double p95LatencyUs = 0.0;
    /// @}

    /// @name Fault-recovery activity (0 on fault-free runs)
    /// @{
    /** Transient-fault re-serve attempts (RetryPolicy). Includes the
     *  async fused-chunk fallback's individual re-serves. */
    std::int64_t retries = 0;
    /** Queries shed at dispatch because their deadline had already
     *  passed while queued (AsyncServingEngine deadlines). */
    std::int64_t deadlineSheds = 0;
    /** Shard quarantine transitions (ShardedEngine circuit breaker);
     *  counts every healthy->quarantined edge including re-trips
     *  after a failed probe. */
    std::int64_t quarantines = 0;
    /** Queries answered from surviving shards only (allowDegraded),
     *  marked partial with a < 1 coverage fraction. */
    std::int64_t degradedServes = 0;
    /// @}

    /** Simulated totals: setup once + query windows summed, with
     *  queriesServed set (same accounting as a serial session). */
    sim::PerfReport aggregate;

    /** Process-wide PlanCache counters at stats() time (shared across
     *  backends -- replicas, shards and sessions all compile through
     *  the same cache; see core/PlanCache.h). */
    PlanCacheStats planCache;
};

/**
 * A synchronous query-serving backend the async front-end can drive.
 * See the file comment for the contract.
 */
class QueryBackend
{
  public:
    virtual ~QueryBackend() = default;

    /**
     * Validate @p args against the kernel signature without serving
     * (throws CompilerError on mismatch). Called at admission time so
     * malformed queries fail on the submitter's stack, never inside a
     * dispatcher thread.
     */
    virtual void
    validateQuery(const std::vector<rt::BufferPtr> &args) const = 0;

    /**
     * Serve one query and record it in stats(). @p ctx, when tracing,
     * parents this query's spans (null with tracing enabled means
     * "own the root span yourself").
     */
    virtual ExecutionResult
    serve(const std::vector<rt::BufferPtr> &args,
          const support::SpanContext *ctx = nullptr) = 0;

    /**
     * Serve queries [@p begin, @p end) of @p queries as one fused
     * multi-query window. @p ctxs, when non-null, holds one tracing
     * context per query of the chunk. Per-query results and reports
     * must stay bit-identical to serial serve() calls, and the fused
     * totals must equal the sum of the per-query windows. A failure
     * must leave stats() untouched (nothing half-recorded).
     */
    virtual FusedBatchResult serveFusedChunk(
        const std::vector<std::vector<rt::BufferPtr>> &queries,
        std::size_t begin, std::size_t end,
        const std::vector<support::SpanContext> *ctxs = nullptr) = 0;

    /**
     * Record per-query lifecycle spans into @p collector (nullptr
     * turns tracing off). @p trace_id groups the spans; 0 allocates a
     * fresh id. Install before serving starts, never concurrently
     * with in-flight queries.
     */
    virtual void enableTracing(support::TraceCollector *collector,
                               std::uint64_t trace_id = 0) = 0;

    /** Aggregate metrics over everything served so far. */
    virtual ServingStats stats() const = 0;

    /** One-time simulated setup cost of programming the backend. */
    virtual const sim::PerfReport &setupReport() const = 0;

    /** True when devices stay programmed across queries (vs the
     *  host-only fallback that re-pays setup per query). */
    virtual bool persistent() const = 0;

    /**
     * How many serve() calls make progress in parallel (replica
     * count, shard replica depth, 1 for a single session). The async
     * front-end sizes its dispatcher thread count from this.
     */
    virtual int concurrency() const = 0;

    /** Number of queries served so far. */
    virtual std::int64_t queriesServed() const = 0;
};

} // namespace c4cam::core

#endif // C4CAM_CORE_QUERYBACKEND_H
