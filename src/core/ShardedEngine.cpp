#include "core/ShardedEngine.h"

#include <algorithm>
#include <future>
#include <utility>

#include "dialects/BuiltinDialect.h"
#include "runtime/HostKernels.h"
#include "support/Error.h"
#include "support/TopKMerge.h"

namespace c4cam::core {

using Clock = std::chrono::steady_clock;

namespace {

/**
 * Find the last top-k op (program order, regions walked depth-first)
 * in @p block. The LAST one matters: it produces the kernel's output
 * ranking, and on the CAM path its ordering (largest=false over
 * distances) differs from the torch-level annotation.
 */
ir::Operation *
findLastTopk(ir::Block *block)
{
    ir::Operation *found = nullptr;
    for (auto &op : block->operations()) {
        if (op->name().ends_with("topk"))
            found = op.get();
        for (std::size_t r = 0; r < op->numRegions(); ++r)
            for (auto &inner : op->region(r).blocks())
                if (ir::Operation *nested = findLastTopk(inner.get()))
                    found = nested;
    }
    return found;
}

} // namespace

ShardPlan
ShardPlan::compute(std::int64_t total_rows, int shards,
                   std::int64_t min_rows)
{
    C4CAM_CHECK(shards >= 1,
                "sharding needs at least 1 shard, got " << shards);
    C4CAM_CHECK(total_rows >= 1,
                "sharding needs at least 1 stored row, got "
                << total_rows);
    std::int64_t base = total_rows / shards;
    std::int64_t extra = total_rows % shards;
    C4CAM_CHECK(base >= std::max<std::int64_t>(min_rows, 1),
                "cannot split " << total_rows << " stored rows across "
                << shards << " shards: every shard needs at least "
                << std::max<std::int64_t>(min_rows, 1)
                << " rows to answer top-" << std::max<std::int64_t>(
                    min_rows, 1) << " locally");

    ShardPlan plan;
    plan.totalRows = total_rows;
    plan.slices.reserve(static_cast<std::size_t>(shards));
    std::int64_t begin = 0;
    for (int s = 0; s < shards; ++s) {
        std::int64_t rows = base + (s < extra ? 1 : 0);
        plan.slices.push_back(ShardSlice{begin, rows});
        begin += rows;
    }
    return plan;
}

ShardedEngine::ShardedEngine(const CompilerOptions &options,
                             const std::string &source,
                             const std::vector<rt::BufferPtr> &setup_args,
                             const ShardedEngineOptions &sharding)
    : replicasPerShard_(sharding.replicasPerShard),
      storedArgIndex_(sharding.storedArgIndex),
      allowDegraded_(sharding.allowDegraded),
      quarantineThreshold_(std::max(1, sharding.quarantineThreshold)),
      cooldownMs_(std::max<std::int64_t>(0, sharding.cooldownMs))
{
    C4CAM_CHECK(sharding.shards >= 1,
                "ShardedEngine needs at least 1 shard, got "
                << sharding.shards);
    C4CAM_CHECK(sharding.replicasPerShard >= 1,
                "ShardedEngine needs at least 1 replica per shard, got "
                << sharding.replicasPerShard);
    C4CAM_CHECK(storedArgIndex_ < setup_args.size(),
                "stored-argument index " << storedArgIndex_
                << " out of range for " << setup_args.size()
                << " setup arguments");

    Compiler compiler(options);

    // Full-size reference instance: the unsharded signature every
    // query is validated against, and the module the final top-k's
    // merge parameters are read from.
    reference_ = std::make_unique<CompiledKernel>(
        compiler.compileTorchScript(source));
    entry_ = reference_->entryPoint();
    ir::Operation *func =
        std::as_const(*reference_).module().lookupFunction(entry_);
    C4CAM_CHECK(func, "sharded kernel has no function '" << entry_
                << "'");
    entryBody_ = &func->region(0).front();
    validateKernelArgs(entryBody_, entry_, setup_args);

    ir::Operation *topk = findLastTopk(entryBody_);
    C4CAM_CHECK(topk,
                "sharded serving requires a kernel ending in top-k "
                "(nothing to scatter-gather otherwise)");
    topK_ = topk->intAttrOr("k", -1);
    if (topK_ < 0)
        // cim.topk variants can carry k as an operand; the result
        // type's trailing extent is the k either way.
        topK_ = topk->result(0)->type().shape().back();
    C4CAM_CHECK(topK_ >= 1, "sharded serving: could not determine k of "
                "the final top-k");
    // The merge must rank exactly like the op that produced the
    // per-shard lists. torch.aten.topk defaults to largest; cim.topk
    // (the CAM path: distances, smaller-is-better) sets the attribute
    // explicitly.
    mergeLargest_ = topk->boolAttrOr("largest", true);

    const rt::BufferPtr &stored = setup_args[storedArgIndex_];
    C4CAM_CHECK(stored && stored->rank() == 2,
                "sharded serving partitions a rank-2 stored tensor "
                "(rows x dims)");
    std::int64_t dims = stored->shape()[1];
    plan_ = ShardPlan::compute(stored->shape()[0], sharding.shards,
                               topK_);

    shards_.reserve(plan_.slices.size());
    std::vector<sim::PerfReport> setups;
    setups.reserve(plan_.slices.size());
    for (const ShardSlice &slice : plan_.slices) {
        Shard shard;
        shard.slice = slice;

        // Re-instance the kernel at the slice's stored size: shapes
        // are compile-time facts in this frontend, so the shard's
        // mapping plan (subarrays, banks) is recomputed for the
        // smaller extent instead of padded.
        std::vector<std::int64_t> shape = stored->shape();
        shape[0] = slice.rows;
        frontend::ShapeOverrides overrides;
        overrides[storedArgIndex_] = shape;
        shard.kernel = std::make_unique<CompiledKernel>(
            compiler.compileTorchScript(source, overrides));

        shard.storedSlice =
            stored->subview({slice.begin, 0}, {slice.rows, dims});
        std::vector<rt::BufferPtr> shard_setup = setup_args;
        shard_setup[storedArgIndex_] = shard.storedSlice;
        shard.engine = shard.kernel->createServingEngine(
            shard_setup, replicasPerShard_);
        // Shard-level retries: a transient fault is re-attempted
        // inside the shard (under the query's scatter span) before it
        // ever counts against the shard's health.
        shard.engine->setRetryPolicy(sharding.retryPolicy);
        // Attaching per shard in slice order makes injector device
        // ids deterministic: shard 0's replicas first, then shard
        // 1's, ... -- a scripted "kill device D" always hits the same
        // physical slice.
        if (sharding.faultInjector)
            shard.engine->attachFaultInjector(sharding.faultInjector);
        setups.push_back(shard.engine->setupReport());
        shards_.push_back(std::move(shard));
    }
    setupReport_ = sim::aggregateShardReports(setups);
    persistent_ = shards_.front().engine->persistent();
    aggregate_ = setupReport_;

    support::ThreadPoolOptions pool_options;
    pool_options.threads = shards_.size() *
                           static_cast<std::size_t>(replicasPerShard_);
    pool_options.namePrefix = "c4cam-shard-";
    pool_options.pinThreads = sharding.pinShardWorkers;
    pool_ = std::make_unique<support::ThreadPool>(pool_options);
}

void
ShardedEngine::validateQuery(const std::vector<rt::BufferPtr> &args) const
{
    validateKernelArgs(entryBody_, entry_, args);
}

void
ShardedEngine::enableTracing(support::TraceCollector *collector,
                             std::uint64_t trace_id)
{
    trace_ = collector;
    if (!collector)
        traceId_ = 0;
    else
        traceId_ = trace_id != 0 ? trace_id : collector->newTraceId();
}

std::vector<rt::BufferPtr>
ShardedEngine::shardArgs(const std::vector<rt::BufferPtr> &args,
                         std::size_t s) const
{
    std::vector<rt::BufferPtr> shard_args = args;
    // The query body ignores the stored argument (the device keeps
    // the slice programmed); swapping the slice view in keeps the
    // arguments shaped to the shard's signature.
    shard_args[storedArgIndex_] = shards_[s].storedSlice;
    return shard_args;
}

ExecutionResult
ShardedEngine::mergeShardResults(
    const std::vector<ExecutionResult> &shard_results,
    const std::vector<std::size_t> &shard_ids) const
{
    C4CAM_ASSERT(shard_results.size() == shard_ids.size(),
                 "mergeShardResults: " << shard_results.size()
                 << " results for " << shard_ids.size() << " shard ids");
    std::vector<sim::PerfReport> perfs;
    perfs.reserve(shard_results.size());

    // Per-shard global-axis index buffers plus shape agreement checks
    // before any merge work.
    std::int64_t num_queries = -1;
    std::vector<rt::BufferPtr> shard_values;
    std::vector<rt::BufferPtr> shard_indices;
    shard_values.reserve(shard_results.size());
    shard_indices.reserve(shard_results.size());
    for (std::size_t s = 0; s < shard_results.size(); ++s) {
        const ExecutionResult &r = shard_results[s];
        C4CAM_CHECK(r.outputs.size() == 2 && r.outputs[0].isBuffer() &&
                        r.outputs[1].isBuffer(),
                    "sharded serving requires kernels returning "
                    "(values, indices); shard " << s << " returned "
                    << r.outputs.size() << " outputs");
        rt::BufferPtr values = r.outputs[0].asBuffer();
        rt::BufferPtr indices = r.outputs[1].asBuffer();
        C4CAM_CHECK(values->rank() == 2 && indices->rank() == 2 &&
                        values->shape() == indices->shape() &&
                        values->shape()[1] == topK_,
                    "sharded serving expects rank-2 (queries x k) "
                    "top-k outputs");
        if (num_queries < 0)
            num_queries = values->shape()[0];
        C4CAM_CHECK(values->shape()[0] == num_queries,
                    "shard " << s << " answered "
                    << values->shape()[0] << " queries, expected "
                    << num_queries);
        shard_values.push_back(values);
        // Local row j of shard shard_ids[s] is global row
        // j + slice.begin; contiguous slices make the remap monotone,
        // which the merge tie-break relies on.
        shard_indices.push_back(rt::host::offsetIndices(
            indices, shards_[shard_ids[s]].slice.begin));
        perfs.push_back(r.perf);
    }

    auto out_values = rt::Buffer::alloc(rt::DType::F32,
                                        {num_queries, topK_});
    auto out_indices = rt::Buffer::alloc(rt::DType::I64,
                                         {num_queries, topK_});
    std::vector<std::vector<support::TopKEntry>> partials(
        shard_results.size());
    for (std::int64_t q = 0; q < num_queries; ++q) {
        for (std::size_t s = 0; s < shard_results.size(); ++s) {
            partials[s].clear();
            partials[s].reserve(static_cast<std::size_t>(topK_));
            for (std::int64_t j = 0; j < topK_; ++j)
                partials[s].push_back(support::TopKEntry{
                    shard_values[s]->at({q, j}),
                    shard_indices[s]->atInt({q, j})});
        }
        std::vector<support::TopKEntry> merged =
            support::mergeTopK(partials,
                               static_cast<std::size_t>(topK_),
                               mergeLargest_);
        for (std::int64_t j = 0; j < topK_; ++j) {
            out_values->set({q, j},
                            merged[static_cast<std::size_t>(j)].value);
            out_indices->setInt(
                {q, j}, merged[static_cast<std::size_t>(j)].index);
        }
    }

    ExecutionResult out;
    out.outputs.emplace_back(out_values);
    out.outputs.emplace_back(out_indices);
    out.perf = sim::aggregateShardReports(perfs);
    // A merge over fewer shards than the plan is a degraded serve:
    // mark it, never silently partial.
    if (shard_ids.size() < shards_.size()) {
        std::int64_t covered = 0;
        for (std::size_t s : shard_ids)
            covered += shards_[s].slice.rows;
        out.partial = true;
        out.perf.coverage = plan_.totalRows > 0
                                ? double(covered) / double(plan_.totalRows)
                                : 0.0;
    }
    return out;
}

void
ShardedEngine::recordServed(const sim::PerfReport &perf,
                            Clock::time_point start,
                            Clock::time_point done)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    if (persistent_)
        aggregate_.addQueryWindow(perf);
    else
        aggregate_.addFullRun(perf);
    ++queriesServed_;
    latenciesUs_.record(
        std::chrono::duration<double, std::micro>(done - start).count());
    if (!anyServed_ || start < firstSubmit_)
        firstSubmit_ = start;
    if (!anyServed_ || done > lastDone_)
        lastDone_ = done;
    anyServed_ = true;
}

ShardedEngine::ShardHealth
ShardedEngine::shardHealth(std::size_t s) const
{
    std::lock_guard<std::mutex> lock(healthMutex_);
    C4CAM_ASSERT(s < shards_.size(), "shardHealth: shard " << s
                 << " out of range");
    ShardHealth health;
    health.consecutiveFailures = shards_[s].consecutiveFailures;
    health.quarantined = shards_[s].quarantined;
    return health;
}

std::vector<std::size_t>
ShardedEngine::selectActiveShards()
{
    std::lock_guard<std::mutex> lock(healthMutex_);
    Clock::time_point now = Clock::now();
    std::vector<std::size_t> active;
    std::vector<std::size_t> probes_claimed;
    active.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        Shard &shard = shards_[s];
        if (!shard.quarantined) {
            active.push_back(s);
            continue;
        }
        bool cooled =
            now - shard.quarantinedAt >=
            std::chrono::milliseconds(cooldownMs_);
        if (cooled && !shard.probing) {
            // One probe at a time: this query re-tests the shard; a
            // herd of probes against still-dead hardware would defeat
            // the circuit breaker.
            shard.probing = true;
            probes_claimed.push_back(s);
            active.push_back(s);
            continue;
        }
        // Still cooling down (or another probe is in flight).
        if (!allowDegraded_) {
            // Release only the probes THIS call claimed before
            // failing fast (other queries' in-flight probes must
            // stay claimed).
            for (std::size_t p : probes_claimed)
                shards_[p].probing = false;
            throw ExecutionError(
                "shard " + std::to_string(s) +
                " is quarantined (circuit breaker open); enable "
                "degraded serving to answer from surviving shards");
        }
    }
    return active;
}

void
ShardedEngine::recordShardSuccess(std::size_t s)
{
    std::lock_guard<std::mutex> lock(healthMutex_);
    Shard &shard = shards_[s];
    shard.consecutiveFailures = 0;
    shard.probing = false;
    shard.quarantined = false; // probe succeeded -> re-admitted
}

void
ShardedEngine::recordShardFailure(std::size_t s,
                                  support::TraceCollector *col,
                                  std::uint64_t trace_id,
                                  std::uint64_t query_id)
{
    bool tripped = false;
    {
        std::lock_guard<std::mutex> lock(healthMutex_);
        Shard &shard = shards_[s];
        ++shard.consecutiveFailures;
        shard.probing = false;
        if (!shard.quarantined &&
            shard.consecutiveFailures >= quarantineThreshold_) {
            shard.quarantined = true;
            shard.quarantinedAt = Clock::now();
            ++quarantines_;
            tripped = true;
        } else if (shard.quarantined) {
            // A failed probe re-arms the cooldown without recounting
            // the quarantine (the breaker never closed).
            shard.quarantinedAt = Clock::now();
        }
    }
    if (tripped && col) {
        // Self-rooted marker: quarantine is an engine-level state
        // transition, not a phase of this query's critical path --
        // queryId names the query whose failure tripped the breaker.
        support::TraceEvent ev;
        ev.name = "shard-quarantine";
        ev.traceId = trace_id;
        ev.queryId = query_id;
        ev.spanId = col->newSpanId();
        ev.parentSpanId = 0;
        ev.startUs = col->nowUs();
        ev.durUs = 0.0;
        col->record(ev);
    }
}

ExecutionResult
ShardedEngine::serve(const std::vector<rt::BufferPtr> &args,
                     const support::SpanContext *ctx)
{
    // Validate against the unsharded signature BEFORE shardArgs
    // touches args[storedArgIndex_]: malformed calls must fail on the
    // caller's stack, not under a scatter task (and never index past
    // a short argument vector).
    validateQuery(args);

    support::SpanContext local;
    bool own_root = false;
    if (!ctx && trace_) {
        local.collector = trace_;
        local.traceId = traceId_;
        local.queryId = trace_->newQueryId();
        local.parentSpanId = trace_->newSpanId(); // becomes the root id
        ctx = &local;
        own_root = true;
    }
    support::TraceCollector *col =
        ctx && ctx->collector ? ctx->collector : nullptr;
    std::uint64_t trace_id = col ? ctx->traceId : 0;
    std::uint64_t query_id = col ? ctx->queryId : 0;
    std::uint64_t scatter_span = col ? col->newSpanId() : 0;

    // Circuit breaker: healthy shards plus due probes; throws
    // ExecutionError (fail fast) when a quarantined shard is still
    // cooling down and degraded serving is off.
    std::vector<std::size_t> active = selectActiveShards();
    if (active.empty())
        throw ExecutionError(
            "every shard is quarantined and still cooling down; "
            "no shard can answer this query");

    // The scatter + shard-merge pair (and the root, when owned) is
    // recorded on every exit: shard-level spans already landed under
    // the scatter span even when a shard failed, and an unresolvable
    // parent would fail c4cam-trace-check on a complete trace.
    auto record_spans = [&](Clock::time_point t0, Clock::time_point t1,
                            Clock::time_point t2) {
        if (!col)
            return;
        // Shared time points telescope exactly: scatter [t0, t1] and
        // shard-merge [t1, t2] tile the root's [t0, t2] bitwise.
        double u0 = col->toUs(t0);
        double u1 = col->toUs(t1);
        double u2 = col->toUs(t2);
        support::TraceEvent scatter;
        scatter.name = "scatter";
        scatter.traceId = trace_id;
        scatter.queryId = query_id;
        scatter.spanId = scatter_span;
        scatter.parentSpanId = ctx->parentSpanId;
        scatter.startUs = u0;
        scatter.durUs = u1 - u0;
        col->record(scatter);

        support::TraceEvent shard_merge;
        shard_merge.name = "shard-merge";
        shard_merge.traceId = trace_id;
        shard_merge.queryId = query_id;
        shard_merge.spanId = col->newSpanId();
        shard_merge.parentSpanId = ctx->parentSpanId;
        shard_merge.startUs = u1;
        shard_merge.durUs = u2 - u1;
        col->record(shard_merge);

        if (own_root) {
            support::TraceEvent root;
            root.name = "query";
            root.traceId = trace_id;
            root.queryId = query_id;
            root.spanId = ctx->parentSpanId;
            root.startUs = u0;
            root.durUs = u2 - u0;
            col->record(root);
        }
    };

    Clock::time_point t0 = Clock::now();
    std::vector<std::future<ExecutionResult>> futures;
    futures.reserve(active.size());
    for (std::size_t s : active) {
        futures.push_back(pool_->submit(
            [this, s, &args, col, trace_id, query_id, scatter_span] {
                // Shard execute/merge spans parent under the scatter
                // span, tying each shard's interval to the fan-out.
                support::SpanContext sctx{col, trace_id, query_id,
                                          scatter_span};
                return shards_[s].engine->serve(shardArgs(args, s),
                                                col ? &sctx : nullptr);
            }));
    }
    // Wait for EVERY shard before harvesting: a failing shard must
    // not leave siblings running against stack-borrowed args.
    for (auto &future : futures)
        future.wait();
    // Harvest with per-shard failure isolation: a shard that failed
    // (transient retries exhausted, or a permanent fault) counts
    // against its health; the survivors can still answer when
    // degraded serving is on.
    std::vector<ExecutionResult> shard_results;
    std::vector<std::size_t> surviving;
    shard_results.reserve(futures.size());
    surviving.reserve(futures.size());
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        try {
            shard_results.push_back(futures[i].get());
            surviving.push_back(active[i]);
            recordShardSuccess(active[i]);
        } catch (...) {
            recordShardFailure(active[i], col, trace_id, query_id);
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    Clock::time_point t1 = Clock::now();

    if (surviving.empty() || (first_error && !allowDegraded_)) {
        record_spans(t0, t1, t1);
        std::rethrow_exception(first_error);
    }

    ExecutionResult merged = mergeShardResults(shard_results, surviving);
    Clock::time_point t2 = Clock::now();
    recordServed(merged.perf, t0, t2);
    if (merged.partial) {
        {
            std::lock_guard<std::mutex> lock(healthMutex_);
            ++degradedServes_;
        }
        if (col) {
            // Zero-duration marker: this query was answered from
            // surviving shards only (coverage < 1).
            support::TraceEvent degraded;
            degraded.name = "degraded";
            degraded.traceId = trace_id;
            degraded.queryId = query_id;
            degraded.spanId = col->newSpanId();
            degraded.parentSpanId = ctx->parentSpanId;
            degraded.startUs = col->toUs(t1);
            degraded.durUs = 0.0;
            col->record(degraded);
        }
    }
    record_spans(t0, t1, t2);
    return merged;
}

FusedBatchResult
ShardedEngine::serveFusedChunk(
    const std::vector<std::vector<rt::BufferPtr>> &queries,
    std::size_t begin, std::size_t end,
    const std::vector<support::SpanContext> *ctxs)
{
    C4CAM_CHECK(begin < end && end <= queries.size(),
                "fused chunk [" << begin << ", " << end
                << ") out of range for " << queries.size()
                << " queries");
    std::size_t n = end - begin;
    // Same up-front validation as serve(): every query of the chunk
    // must match the unsharded signature before any shard sees it.
    for (std::size_t i = 0; i < n; ++i)
        validateQuery(queries[begin + i]);

    std::vector<support::SpanContext> local_ctxs;
    bool own_roots = false;
    if (!ctxs && trace_) {
        local_ctxs.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            local_ctxs.push_back(support::SpanContext{
                trace_, traceId_, trace_->newQueryId(),
                trace_->newSpanId()});
        ctxs = &local_ctxs;
        own_roots = true;
    }
    support::TraceCollector *col =
        ctxs && !ctxs->empty() ? (*ctxs)[0].collector : nullptr;
    std::vector<std::uint64_t> scatter_spans(n, 0);
    if (col)
        for (std::size_t i = 0; i < n; ++i)
            scatter_spans[i] = col->newSpanId();

    // Same circuit-breaker selection as serve(): skip quarantined
    // shards (degraded) or fail fast, probe after cooldown.
    std::vector<std::size_t> active = selectActiveShards();
    if (active.empty())
        throw ExecutionError(
            "every shard is quarantined and still cooling down; "
            "no shard can answer this fused chunk");

    Clock::time_point t0 = Clock::now();
    std::vector<std::future<FusedBatchResult>> futures;
    futures.reserve(active.size());
    for (std::size_t s : active) {
        futures.push_back(pool_->submit([this, s, &queries, begin, n,
                                         ctxs, col, &scatter_spans] {
            // Each shard folds the chunk into ONE fused device window
            // of its own; per-query spans parent under that query's
            // scatter span.
            std::vector<std::vector<rt::BufferPtr>> shard_queries;
            shard_queries.reserve(n);
            for (std::size_t i = 0; i < n; ++i)
                shard_queries.push_back(
                    shardArgs(queries[begin + i], s));
            std::vector<support::SpanContext> shard_ctxs;
            if (col) {
                shard_ctxs.reserve(n);
                for (std::size_t i = 0; i < n; ++i)
                    shard_ctxs.push_back(support::SpanContext{
                        col, (*ctxs)[i].traceId, (*ctxs)[i].queryId,
                        scatter_spans[i]});
            }
            return shards_[s].engine->serveFusedChunk(
                shard_queries, 0, n, col ? &shard_ctxs : nullptr);
        }));
    }
    for (auto &future : futures)
        future.wait();
    // Harvest with health accounting. Unlike serve(), ANY shard
    // failure fails the whole chunk (the QueryBackend contract:
    // nothing half-recorded; the async front-end falls back to
    // per-query serves, which handle retries and degraded merges).
    std::vector<FusedBatchResult> shard_batches;
    shard_batches.reserve(futures.size());
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        try {
            shard_batches.push_back(futures[i].get());
            recordShardSuccess(active[i]);
        } catch (...) {
            recordShardFailure(active[i], col,
                               col ? (*ctxs)[0].traceId : 0,
                               col ? (*ctxs)[0].queryId : 0);
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    Clock::time_point t1 = Clock::now();
    if (first_error) {
        if (col) {
            // Sibling shards already recorded per-query spans under
            // the scatter ids; record those ids under a non-"scatter"
            // name so the trace stays parent-resolvable without
            // claiming a scatter/merge pair this aborted chunk never
            // completed (a later per-query retry records the real
            // pair under the same parent).
            double u0 = col->toUs(t0);
            double u1 = col->toUs(t1);
            for (std::size_t i = 0; i < n; ++i) {
                support::TraceEvent abort_span;
                abort_span.name = "scatter-abort";
                abort_span.traceId = (*ctxs)[i].traceId;
                abort_span.queryId = (*ctxs)[i].queryId;
                abort_span.spanId = scatter_spans[i];
                abort_span.parentSpanId = (*ctxs)[i].parentSpanId;
                abort_span.startUs = u0;
                abort_span.durUs = u1 - u0;
                abort_span.fusedK = static_cast<std::int64_t>(n);
                col->record(abort_span);
                if (own_roots) {
                    support::TraceEvent root;
                    root.name = "query";
                    root.traceId = (*ctxs)[i].traceId;
                    root.queryId = (*ctxs)[i].queryId;
                    root.spanId = (*ctxs)[i].parentSpanId;
                    root.startUs = u0;
                    root.durUs = u1 - u0;
                    root.fusedK = static_cast<std::int64_t>(n);
                    col->record(root);
                }
            }
        }
        std::rethrow_exception(first_error);
    }

    FusedBatchResult batch;
    batch.results.reserve(n);
    batch.fused.k = static_cast<std::int64_t>(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<ExecutionResult> per_shard;
        per_shard.reserve(shard_batches.size());
        for (const FusedBatchResult &sb : shard_batches)
            per_shard.push_back(sb.results[i]);
        ExecutionResult merged = mergeShardResults(per_shard, active);
        batch.fused.addQueryReport(merged.perf);
        batch.results.push_back(std::move(merged));
    }
    if (active.size() < shards_.size()) {
        // The whole chunk was answered without the quarantined
        // shards: every query of it is a degraded serve.
        std::lock_guard<std::mutex> lock(healthMutex_);
        degradedServes_ += static_cast<std::int64_t>(n);
    }
    batch.fusedReport = batch.fused.toReport(
        persistent_ ? setupReport_
                    : nonPersistentSetupTotal(batch.results));
    Clock::time_point t2 = Clock::now();

    for (std::size_t i = 0; i < n; ++i)
        recordServed(batch.results[i].perf, t0, t2);

    if (col) {
        double u0 = col->toUs(t0);
        double u1 = col->toUs(t1);
        double u2 = col->toUs(t2);
        for (std::size_t i = 0; i < n; ++i) {
            support::TraceEvent scatter;
            scatter.name = "scatter";
            scatter.traceId = (*ctxs)[i].traceId;
            scatter.queryId = (*ctxs)[i].queryId;
            scatter.spanId = scatter_spans[i];
            scatter.parentSpanId = (*ctxs)[i].parentSpanId;
            scatter.startUs = u0;
            scatter.durUs = u1 - u0;
            scatter.fusedK = static_cast<std::int64_t>(n);
            col->record(scatter);

            support::TraceEvent shard_merge;
            shard_merge.name = "shard-merge";
            shard_merge.traceId = (*ctxs)[i].traceId;
            shard_merge.queryId = (*ctxs)[i].queryId;
            shard_merge.spanId = col->newSpanId();
            shard_merge.parentSpanId = (*ctxs)[i].parentSpanId;
            shard_merge.startUs = u1;
            shard_merge.durUs = u2 - u1;
            col->record(shard_merge);

            if (own_roots) {
                support::TraceEvent root;
                root.name = "query";
                root.traceId = (*ctxs)[i].traceId;
                root.queryId = (*ctxs)[i].queryId;
                root.spanId = (*ctxs)[i].parentSpanId;
                root.startUs = u0;
                root.durUs = u2 - u0;
                root.fusedK = static_cast<std::int64_t>(n);
                col->record(root);
            }
        }
    }
    return batch;
}

std::int64_t
ShardedEngine::queriesServed() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    return queriesServed_;
}

ServingStats
ShardedEngine::stats() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    ServingStats stats;
    stats.queriesServed = queriesServed_;
    stats.aggregate = aggregate_;
    stats.aggregate.queriesServed = queriesServed_;
    if (anyServed_) {
        stats.wallSeconds =
            std::chrono::duration<double>(lastDone_ - firstSubmit_)
                .count();
        if (stats.wallSeconds > 0.0)
            stats.qps = static_cast<double>(queriesServed_) /
                        stats.wallSeconds;
    }
    std::vector<double> sorted = latenciesUs_.sorted();
    stats.p50LatencyUs = support::percentile(sorted, 50.0);
    stats.p95LatencyUs = support::percentile(sorted, 95.0);
    stats.planCache = PlanCache::instance().stats();
    {
        std::lock_guard<std::mutex> health(healthMutex_);
        stats.quarantines = quarantines_;
        stats.degradedServes = degradedServes_;
    }
    for (const Shard &shard : shards_)
        stats.retries += shard.engine->retriesAttempted();
    return stats;
}

} // namespace c4cam::core
