#include "core/ServingEngine.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "support/Error.h"

namespace c4cam::core {

using Clock = std::chrono::steady_clock;

namespace {

/** Percentile over @p sorted (ascending); nearest-rank. */
double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    double rank = p / 100.0 * static_cast<double>(sorted.size());
    std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
    idx = std::min(std::max<std::size_t>(idx, 1), sorted.size()) - 1;
    return sorted[idx];
}

} // namespace

ServingEngine::ServingEngine(std::shared_ptr<ir::Context> ctx,
                             ir::Module &module, CompilerOptions options,
                             std::string entry,
                             const std::vector<rt::BufferPtr> &setup_args,
                             int replicas)
    : module_(&module), options_(std::move(options)),
      entry_(std::move(entry)), ctx_(std::move(ctx))
{
    C4CAM_CHECK(replicas >= 1,
                "ServingEngine needs at least 1 replica, got " << replicas);
    ir::Operation *func = module_->lookupFunction(entry_);
    C4CAM_CHECK(func, "serving kernel has no function '" << entry_ << "'");
    entryBody_ = &func->region(0).front();
    validateKernelArgs(entryBody_, entry_, setup_args);

    interpreter_ = std::make_unique<rt::Interpreter>(*module_);
    persistent_ = !options_.hostOnly &&
                  rt::Interpreter::hasPhaseMarkers(func);

    if (persistent_) {
        // Program the master replica (the only simulated setup cost),
        // then replicate it: clones copy the programmed cells, the
        // setup accounting and the handle numbering, so a forked
        // interpreter state keeps addressing the right subarrays.
        auto master = std::make_unique<Replica>();
        master->device = std::make_unique<sim::CamDevice>(options_.spec);
        master->state = rt::ExecutionState(master->device.get());
        interpreter_->callFunction(master->state, entry_,
                                   rt::toRtValues(setup_args),
                                   rt::Interpreter::ExecPhase::SetupOnly);
        setupReport_ = master->device->report();
        replicas_.push_back(std::move(master));
        for (int i = 1; i < replicas; ++i) {
            auto replica = std::make_unique<Replica>();
            replica->device = replicas_[0]->device->cloneProgrammed();
            replica->state = replicas_[0]->state.forkForReplica(
                replica->device.get());
            replicas_.push_back(std::move(replica));
        }
    } else {
        // Host-only fallback: no devices to replicate; per-query
        // executions are already independent. Keep placeholder
        // replicas so the concurrency cap (and stats) behave the same.
        for (int i = 0; i < replicas; ++i)
            replicas_.push_back(std::make_unique<Replica>());
    }
    aggregate_ = setupReport_;

    freeReplicas_.reserve(replicas_.size());
    for (auto &replica : replicas_)
        freeReplicas_.push_back(replica.get());

    pool_ = std::make_unique<support::ThreadPool>(replicas_.size());
}

ServingEngine::Replica *
ServingEngine::acquireReplica()
{
    std::unique_lock<std::mutex> lock(replicaMutex_);
    replicaFree_.wait(lock, [this] { return !freeReplicas_.empty(); });
    Replica *replica = freeReplicas_.back();
    freeReplicas_.pop_back();
    return replica;
}

void
ServingEngine::releaseReplica(Replica *replica)
{
    {
        std::lock_guard<std::mutex> lock(replicaMutex_);
        freeReplicas_.push_back(replica);
    }
    replicaFree_.notify_one();
}

ExecutionResult
ServingEngine::serveOn(Replica &replica,
                       const std::vector<rt::BufferPtr> &args)
{
    if (!persistent_)
        return runKernelOnce(*module_, entry_, options_, args);

    // Fresh accounting window: this query's report covers exactly this
    // call on top of the shared setup, bit-identical to a serial
    // session (and to a single-shot run).
    replica.device->beginQueryWindow();
    ExecutionResult result;
    result.outputs = interpreter_->callFunction(
        replica.state, entry_, rt::toRtValues(args),
        rt::Interpreter::ExecPhase::QueryOnly);
    result.perf = replica.device->report();
    result.perf.queriesServed = 1;
    return result;
}

ExecutionResult
ServingEngine::serve(const std::vector<rt::BufferPtr> &args)
{
    Clock::time_point start = Clock::now();
    Replica *replica = acquireReplica();
    ExecutionResult result;
    try {
        result = serveOn(*replica, args);
    } catch (...) {
        releaseReplica(replica);
        throw;
    }
    releaseReplica(replica);
    Clock::time_point done = Clock::now();
    recordServed(result.perf,
                 std::chrono::duration<double>(done - start).count(),
                 start, done);
    return result;
}

void
ServingEngine::recordServed(const sim::PerfReport &perf, double latency_s,
                            Clock::time_point start, Clock::time_point done)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    if (persistent_)
        aggregate_.addQueryWindow(perf);
    else
        aggregate_.addFullRun(perf);
    ++queriesServed_;
    latenciesUs_.push_back(latency_s * 1e6);
    if (!anyServed_ || start < firstSubmit_)
        firstSubmit_ = start;
    if (!anyServed_ || done > lastDone_)
        lastDone_ = done;
    anyServed_ = true;
}

std::future<ExecutionResult>
ServingEngine::submit(std::vector<rt::BufferPtr> args)
{
    validateKernelArgs(entryBody_, entry_, args);
    return pool_->submit(
        [this, args = std::move(args)] { return serve(args); });
}

std::vector<ExecutionResult>
ServingEngine::runBatch(
    const std::vector<std::vector<rt::BufferPtr>> &queries, int threads)
{
    // Validate everything up front: a malformed query must fail before
    // any work is enqueued, not halfway through a batch.
    for (const auto &args : queries)
        validateKernelArgs(entryBody_, entry_, args);

    int lanes = threads <= 0 ? numReplicas()
                             : std::min(threads, numReplicas());
    lanes = std::min<int>(lanes, static_cast<int>(queries.size()));

    std::vector<ExecutionResult> results(queries.size());
    if (lanes <= 0)
        return results;

    // Drain lanes: `lanes` pool tasks pull query indices from a shared
    // cursor, so concurrency is capped at `lanes` while results land
    // in input order (distinct slots, no ordering races).
    auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
    std::vector<std::future<void>> futures;
    futures.reserve(static_cast<std::size_t>(lanes));
    for (int lane = 0; lane < lanes; ++lane) {
        futures.push_back(pool_->submit([this, &queries, &results,
                                         cursor] {
            for (;;) {
                std::size_t idx = cursor->fetch_add(1);
                if (idx >= queries.size())
                    return;
                results[idx] = serve(queries[idx]);
            }
        }));
    }
    // get() rethrows the first lane failure after all lanes stopped.
    for (auto &future : futures)
        future.wait();
    for (auto &future : futures)
        future.get();
    return results;
}

std::int64_t
ServingEngine::queriesServed() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    return queriesServed_;
}

ServingStats
ServingEngine::stats() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    ServingStats stats;
    stats.queriesServed = queriesServed_;
    stats.aggregate = aggregate_;
    stats.aggregate.queriesServed = queriesServed_;
    if (anyServed_) {
        stats.wallSeconds =
            std::chrono::duration<double>(lastDone_ - firstSubmit_)
                .count();
        if (stats.wallSeconds > 0.0)
            stats.qps = static_cast<double>(queriesServed_) /
                        stats.wallSeconds;
    }
    std::vector<double> sorted = latenciesUs_;
    std::sort(sorted.begin(), sorted.end());
    stats.p50LatencyUs = percentile(sorted, 50.0);
    stats.p95LatencyUs = percentile(sorted, 95.0);
    return stats;
}

} // namespace c4cam::core
