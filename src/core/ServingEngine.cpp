#include "core/ServingEngine.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "sim/FaultInjector.h"
#include "support/Backoff.h"
#include "support/Error.h"
#include "support/Stats.h"

namespace c4cam::core {

using Clock = std::chrono::steady_clock;

ServingEngine::ServingEngine(std::shared_ptr<ir::Context> ctx,
                             ir::Module &module, CompilerOptions options,
                             std::string entry,
                             const std::vector<rt::BufferPtr> &setup_args,
                             int replicas,
                             std::shared_ptr<const rt::ExecutionPlan> plan)
    : module_(&module), options_(std::move(options)),
      entry_(std::move(entry)), ctx_(std::move(ctx)),
      plan_(std::move(plan))
{
    C4CAM_CHECK(replicas >= 1,
                "ServingEngine needs at least 1 replica, got " << replicas);
    ir::Operation *func = module_->lookupFunction(entry_);
    C4CAM_CHECK(func, "serving kernel has no function '" << entry_ << "'");
    entryBody_ = &func->region(0).front();
    validateKernelArgs(entryBody_, entry_, setup_args);

    if (options_.treeWalkExecution)
        plan_ = nullptr;
    else if (!plan_)
        plan_ = tryCompilePlan(*module_, entry_, options_);

    // The interpreter only backs the tree-walk mode; plan replicas
    // replay the shared instruction stream instead.
    if (!plan_)
        interpreter_ = std::make_unique<rt::Interpreter>(*module_);
    persistent_ = !options_.hostOnly &&
                  rt::Interpreter::hasPhaseMarkers(func);

    if (persistent_) {
        // Program the master replica (the only simulated setup cost),
        // then replicate it: clones copy the programmed cells, the
        // setup accounting and the handle numbering, so a forked
        // interpreter state / slot frame keeps addressing the right
        // subarrays.
        auto master = std::make_unique<Replica>();
        master->device = std::make_unique<sim::CamDevice>(options_.spec);
        // Clones inherit the model via cloneProgrammed's copy, so the
        // whole replica pool fuses under one accounting regime.
        master->device->setFusionModel(options_.fusionModel);
        if (plan_) {
            master->frame = plan_->makeFrame();
            plan_->run(master->frame, master->device.get(),
                       rt::toRtValues(setup_args),
                       rt::ExecutionPlan::ExecPhase::SetupOnly);
        } else {
            master->state = rt::ExecutionState(master->device.get());
            interpreter_->callFunction(
                master->state, entry_, rt::toRtValues(setup_args),
                rt::Interpreter::ExecPhase::SetupOnly);
        }
        setupReport_ = master->device->report();
        replicas_.push_back(std::move(master));
        for (int i = 1; i < replicas; ++i) {
            auto replica = std::make_unique<Replica>();
            replica->device = replicas_[0]->device->cloneProgrammed();
            if (plan_)
                // Slot frames fork by plain copy: setup results are
                // immutable once programmed, and device handles stay
                // valid on a cloneProgrammed() copy.
                replica->frame = replicas_[0]->frame;
            else
                replica->state = replicas_[0]->state.forkForReplica(
                    replica->device.get());
            replicas_.push_back(std::move(replica));
        }
    } else {
        // Host-only fallback: no devices to replicate; per-query
        // executions are already independent. Keep placeholder
        // replicas so the concurrency cap (and stats) behave the same.
        for (int i = 0; i < replicas; ++i)
            replicas_.push_back(std::make_unique<Replica>());
    }
    aggregate_ = setupReport_;

    freeReplicas_.reserve(replicas_.size());
    for (auto &replica : replicas_)
        freeReplicas_.push_back(replica.get());
}

support::ThreadPool &
ServingEngine::pool()
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    if (!pool_)
        pool_ = std::make_unique<support::ThreadPool>(replicas_.size());
    return *pool_;
}

ServingEngine::Replica *
ServingEngine::acquireReplica()
{
    std::unique_lock<std::mutex> lock(replicaMutex_);
    replicaFree_.wait(lock, [this] { return !freeReplicas_.empty(); });
    Replica *replica = freeReplicas_.back();
    freeReplicas_.pop_back();
    return replica;
}

void
ServingEngine::releaseReplica(Replica *replica)
{
    {
        std::lock_guard<std::mutex> lock(replicaMutex_);
        freeReplicas_.push_back(replica);
    }
    replicaFree_.notify_one();
}

void
ServingEngine::attachFaultInjector(
    std::shared_ptr<sim::FaultInjector> injector)
{
    if (!persistent_)
        return; // host-only: no devices to fault
    for (auto &replica : replicas_)
        if (replica->device)
            replica->device->attachFaultInjector(injector);
}

void
ServingEngine::enableTracing(support::TraceCollector *collector,
                             std::uint64_t trace_id)
{
    trace_ = collector;
    if (!collector)
        traceId_ = 0;
    else
        traceId_ = trace_id != 0 ? trace_id : collector->newTraceId();
}

ExecutionResult
ServingEngine::serveOn(Replica &replica,
                       const std::vector<rt::BufferPtr> &args,
                       const support::SpanContext *ctx)
{
    // Tracing adds an id handout plus four clock reads per query when
    // a context is threaded in, and predictable null checks when not;
    // it never touches the device or the result, so outputs and
    // PerfReports stay bit-identical either way.
    support::TraceCollector *col =
        ctx && ctx->collector ? ctx->collector : nullptr;
    std::uint64_t execSpan = col ? col->newSpanId() : 0;
    double e0 = col ? col->nowUs() : 0.0;

    ExecutionResult result;
    try {
        if (!persistent_) {
            result = runKernelOnce(*module_, entry_, options_, args,
                                   plan_.get());
        } else {
            // Fresh accounting window: this query's report covers
            // exactly this call on top of the shared setup,
            // bit-identical to a serial session (and to a single-shot
            // run).
            replica.device->beginQueryWindow();
            if (plan_) {
                if (col)
                    replica.frame.trace = support::SpanContext{
                        col, ctx->traceId, ctx->queryId, execSpan};
                result.outputs = plan_->run(
                    replica.frame, replica.device.get(),
                    rt::toRtValues(args),
                    rt::ExecutionPlan::ExecPhase::QueryOnly);
                if (col)
                    replica.frame.trace = support::SpanContext{};
            } else {
                result.outputs = interpreter_->callFunction(
                    replica.state, entry_, rt::toRtValues(args),
                    rt::Interpreter::ExecPhase::QueryOnly);
            }
        }
    } catch (...) {
        if (col) {
            // A fault mid-replay may already have recorded children
            // under this execute span (the plan's RAII "plan-replay"
            // span fires during unwinding); record the execute span
            // itself so the trace stays parent-resolvable.
            replica.frame.trace = support::SpanContext{};
            support::TraceEvent exec;
            exec.name = "execute";
            exec.traceId = ctx->traceId;
            exec.queryId = ctx->queryId;
            exec.spanId = execSpan;
            exec.parentSpanId = ctx->parentSpanId;
            exec.startUs = e0;
            exec.durUs = col->nowUs() - e0;
            col->record(exec);
        }
        throw;
    }
    double e1 = col ? col->nowUs() : 0.0;
    if (persistent_) {
        result.perf = replica.device->report();
        result.perf.queriesServed = 1;
    }
    if (col) {
        double m1 = col->nowUs();
        support::TraceEvent exec;
        exec.name = "execute";
        exec.traceId = ctx->traceId;
        exec.queryId = ctx->queryId;
        exec.spanId = execSpan;
        exec.parentSpanId = ctx->parentSpanId;
        exec.startUs = e0;
        exec.durUs = e1 - e0;
        sim::attachWindowBreakdown(exec, result.perf);
        col->record(exec);

        support::TraceEvent merge;
        merge.name = "merge";
        merge.traceId = ctx->traceId;
        merge.queryId = ctx->queryId;
        merge.spanId = col->newSpanId();
        merge.parentSpanId = ctx->parentSpanId;
        merge.startUs = e1;
        merge.durUs = m1 - e1;
        col->record(merge);
    }
    return result;
}

ExecutionResult
ServingEngine::serve(const std::vector<rt::BufferPtr> &args,
                     const support::SpanContext *ctx)
{
    // Sync serving with engine tracing on: this call owns the query's
    // root span. The async front-end passes its own per-query context
    // (parenting under its dispatch span) and owns the root instead.
    support::SpanContext local;
    bool own_root = false;
    if (!ctx && trace_) {
        local.collector = trace_;
        local.traceId = traceId_;
        local.queryId = trace_->newQueryId();
        local.parentSpanId = trace_->newSpanId(); // becomes the root id
        ctx = &local;
        own_root = true;
    }
    Clock::time_point start = Clock::now();
    // Record the root span on every exit (the failed attempts may have
    // recorded execute spans under it; an unresolvable parent would
    // fail c4cam-trace-check on an otherwise complete trace).
    auto record_root = [&](Clock::time_point done) {
        if (!own_root)
            return;
        support::TraceEvent root;
        root.name = "query";
        root.traceId = local.traceId;
        root.queryId = local.queryId;
        root.spanId = local.parentSpanId;
        root.startUs = trace_->toUs(start);
        root.durUs = trace_->toUs(done) - root.startUs;
        trace_->record(root);
    };

    ExecutionResult result;
    const int max_attempts = std::max(1, retryPolicy_.maxAttempts);
    for (int attempt = 1;; ++attempt) {
        Replica *replica = acquireReplica();
        try {
            result = serveOn(*replica, args, ctx);
            releaseReplica(replica);
            break;
        } catch (const sim::TransientFault &) {
            // The fault fired before any window state mutated, but the
            // unwind left timing scopes open; roll the replica back to
            // a servable between-queries state either way.
            if (persistent_ && replica->device)
                replica->device->abortQueryWindow();
            releaseReplica(replica);
            if (attempt >= max_attempts) {
                record_root(Clock::now());
                throw;
            }
            retries_.fetch_add(1, std::memory_order_relaxed);
            if (ctx && ctx->collector) {
                support::TraceCollector *col = ctx->collector;
                double now = col->nowUs();
                support::TraceEvent retry;
                retry.name = "retry";
                retry.traceId = ctx->traceId;
                retry.queryId = ctx->queryId;
                retry.spanId = col->newSpanId();
                retry.parentSpanId = ctx->parentSpanId;
                retry.startUs = now;
                retry.durUs = 0.0;
                col->record(retry);
            }
            std::int64_t delay_us = support::backoffDelayUs(
                retryPolicy_.backoffUs, attempt, retryPolicy_.maxBackoffUs,
                retryPolicy_.jitterSeed);
            if (delay_us > 0)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(delay_us));
        } catch (...) {
            // Permanent (ExecutionError / PermanentFault) or
            // programmatic failure: never retried, but the replica
            // still needs its window rolled back to stay servable.
            if (persistent_ && replica->device)
                replica->device->abortQueryWindow();
            releaseReplica(replica);
            record_root(Clock::now());
            throw;
        }
    }
    Clock::time_point done = Clock::now();
    recordServed(result.perf,
                 std::chrono::duration<double>(done - start).count(),
                 start, done);
    record_root(done);
    return result;
}

void
ServingEngine::recordServed(const sim::PerfReport &perf, double latency_s,
                            Clock::time_point start, Clock::time_point done)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    if (persistent_)
        aggregate_.addQueryWindow(perf);
    else
        aggregate_.addFullRun(perf);
    ++queriesServed_;
    latenciesUs_.record(latency_s * 1e6);
    if (!anyServed_ || start < firstSubmit_)
        firstSubmit_ = start;
    if (!anyServed_ || done > lastDone_)
        lastDone_ = done;
    anyServed_ = true;
}

std::future<ExecutionResult>
ServingEngine::submit(std::vector<rt::BufferPtr> args)
{
    validateKernelArgs(entryBody_, entry_, args);
    return pool().submit(
        [this, args = std::move(args)] { return serve(args); });
}

std::vector<ExecutionResult>
ServingEngine::runBatch(
    const std::vector<std::vector<rt::BufferPtr>> &queries, int threads)
{
    // Validate everything up front: a malformed query must fail before
    // any work is enqueued, not halfway through a batch.
    for (const auto &args : queries)
        validateKernelArgs(entryBody_, entry_, args);

    int lanes = threads <= 0 ? numReplicas()
                             : std::min(threads, numReplicas());
    lanes = std::min<int>(lanes, static_cast<int>(queries.size()));

    std::vector<ExecutionResult> results(queries.size());
    if (lanes <= 0)
        return results;

    // Drain lanes: `lanes` pool tasks pull query indices from a shared
    // cursor, so concurrency is capped at `lanes` while results land
    // in input order (distinct slots, no ordering races).
    auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
    std::vector<std::future<void>> futures;
    futures.reserve(static_cast<std::size_t>(lanes));
    for (int lane = 0; lane < lanes; ++lane) {
        futures.push_back(pool().submit([this, &queries, &results,
                                         cursor] {
            for (;;) {
                std::size_t idx = cursor->fetch_add(1);
                if (idx >= queries.size())
                    return;
                results[idx] = serve(queries[idx]);
            }
        }));
    }
    // get() rethrows the first lane failure after all lanes stopped.
    for (auto &future : futures)
        future.wait();
    for (auto &future : futures)
        future.get();
    return results;
}

FusedBatchResult
ServingEngine::serveFusedChunk(
    const std::vector<std::vector<rt::BufferPtr>> &queries,
    std::size_t begin, std::size_t end,
    const std::vector<support::SpanContext> *ctxs)
{
    // Sync fused serving with engine tracing on: own one root span per
    // query of the chunk (the async front-end passes @p ctxs and owns
    // its roots itself).
    std::vector<support::SpanContext> local_ctxs;
    bool own_roots = false;
    if (!ctxs && trace_) {
        local_ctxs.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i)
            local_ctxs.push_back(support::SpanContext{
                trace_, traceId_, trace_->newQueryId(),
                trace_->newSpanId()});
        ctxs = &local_ctxs;
        own_roots = true;
    }

    FusedBatchResult batch;
    batch.results.reserve(end - begin);
    /** Per-query stats, recorded only once the whole chunk succeeded. */
    struct Served
    {
        sim::PerfReport perf;
        Clock::time_point start;
        Clock::time_point done;
    };
    std::vector<Served> served;
    served.reserve(end - begin);
    Clock::time_point chunk_start = Clock::now();
    Replica *replica = acquireReplica();
    try {
        if (persistent_)
            replica->device->beginFusedWindow(
                static_cast<int>(end - begin));
        for (std::size_t i = begin; i < end; ++i) {
            Clock::time_point start = Clock::now();
            ExecutionResult r = serveOn(
                *replica, queries[i],
                ctxs ? &(*ctxs)[i - begin] : nullptr);
            Clock::time_point done = Clock::now();
            served.push_back({r.perf, start, done});
            batch.results.push_back(std::move(r));
        }
        if (persistent_)
            batch.fused = replica->device->endFusedWindow();
    } catch (...) {
        // A failed query leaves the partial fused accounting
        // meaningless; discard it -- along with any open timing
        // scopes the unwind left behind -- so the replica stays
        // servable. Nothing was recorded in the serving stats either,
        // so a caller that retries the queries individually (the
        // async front-end's fallback) does not double-count the ones
        // that succeeded before the failure.
        if (persistent_ && replica->device)
            replica->device->abortQueryWindow();
        releaseReplica(replica);
        if (own_roots) {
            // Queries [0, served.size()] already recorded execute
            // spans under their root ids (the failed query's execute
            // span is recorded by serveOn's unwind path); record
            // those roots so the trace stays parent-resolvable.
            double now_us = trace_->nowUs();
            for (std::size_t j = 0;
                 j <= served.size() && j < local_ctxs.size(); ++j) {
                const support::SpanContext &qctx = local_ctxs[j];
                support::TraceEvent root;
                root.name = "query";
                root.traceId = qctx.traceId;
                root.queryId = qctx.queryId;
                root.spanId = qctx.parentSpanId;
                root.startUs = trace_->toUs(
                    j < served.size() ? served[j].start : chunk_start);
                root.durUs =
                    j < served.size()
                        ? trace_->toUs(served[j].done) - root.startUs
                        : now_us - root.startUs;
                root.fusedK = static_cast<std::int64_t>(end - begin);
                trace_->record(root);
            }
        }
        throw;
    }
    releaseReplica(replica);
    for (const Served &s : served)
        recordServed(s.perf,
                     std::chrono::duration<double>(s.done - s.start)
                         .count(),
                     s.start, s.done);
    if (own_roots) {
        for (std::size_t j = 0; j < served.size(); ++j) {
            const support::SpanContext &ctx = (*ctxs)[j];
            support::TraceEvent root;
            root.name = "query";
            root.traceId = ctx.traceId;
            root.queryId = ctx.queryId;
            root.spanId = ctx.parentSpanId;
            root.startUs = trace_->toUs(served[j].start);
            root.durUs = trace_->toUs(served[j].done) - root.startUs;
            root.fusedK = static_cast<std::int64_t>(end - begin);
            trace_->record(root);
        }
    }

    if (!persistent_) {
        // Non-persistent fallback: synthesize the fused accounting
        // from the per-query reports; setup was re-paid per query, so
        // the report carries the summed setup (see
        // nonPersistentSetupTotal).
        batch.fused.k = static_cast<std::int64_t>(end - begin);
        for (const auto &r : batch.results)
            batch.fused.addQueryReport(r.perf);
        batch.fusedReport =
            batch.fused.toReport(nonPersistentSetupTotal(batch.results));
        return batch;
    }
    batch.fusedReport = batch.fused.toReport(setupReport_);
    return batch;
}

std::vector<FusedBatchResult>
ServingEngine::runFusedBatch(
    const std::vector<std::vector<rt::BufferPtr>> &queries, int k,
    int threads)
{
    C4CAM_CHECK(k >= 1, "fused batch width must be >= 1, got " << k);
    for (const auto &args : queries)
        validateKernelArgs(entryBody_, entry_, args);

    std::size_t n = queries.size();
    std::size_t width = static_cast<std::size_t>(k);
    std::size_t num_chunks = (n + width - 1) / width;
    std::vector<FusedBatchResult> results(num_chunks);
    if (num_chunks == 0)
        return results;

    int lanes = threads <= 0 ? numReplicas()
                             : std::min(threads, numReplicas());
    lanes = std::min<int>(lanes, static_cast<int>(num_chunks));

    auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
    std::vector<std::future<void>> futures;
    futures.reserve(static_cast<std::size_t>(lanes));
    for (int lane = 0; lane < lanes; ++lane) {
        futures.push_back(pool().submit([this, &queries, &results,
                                         cursor, n, width, num_chunks] {
            for (;;) {
                std::size_t idx = cursor->fetch_add(1);
                if (idx >= num_chunks)
                    return;
                std::size_t begin = idx * width;
                std::size_t end = std::min(n, begin + width);
                results[idx] = serveFusedChunk(queries, begin, end);
            }
        }));
    }
    for (auto &future : futures)
        future.wait();
    for (auto &future : futures)
        future.get();
    return results;
}

std::int64_t
ServingEngine::queriesServed() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    return queriesServed_;
}

ServingStats
ServingEngine::stats() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    ServingStats stats;
    stats.queriesServed = queriesServed_;
    stats.retries = retries_.load(std::memory_order_relaxed);
    stats.aggregate = aggregate_;
    stats.aggregate.queriesServed = queriesServed_;
    if (anyServed_) {
        stats.wallSeconds =
            std::chrono::duration<double>(lastDone_ - firstSubmit_)
                .count();
        if (stats.wallSeconds > 0.0)
            stats.qps = static_cast<double>(queriesServed_) /
                        stats.wallSeconds;
    }
    std::vector<double> sorted = latenciesUs_.sorted();
    stats.p50LatencyUs = support::percentile(sorted, 50.0);
    stats.p95LatencyUs = support::percentile(sorted, 95.0);
    stats.planCache = PlanCache::instance().stats();
    return stats;
}

} // namespace c4cam::core
