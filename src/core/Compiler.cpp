#include "core/Compiler.h"

#include "core/AsyncServingEngine.h"
#include "core/ExecutionSession.h"
#include "core/PlanCache.h"
#include "core/ServingEngine.h"
#include "dialects/AllDialects.h"
#include "frontend/TorchScriptFrontend.h"
#include "ir/Verifier.h"
#include "passes/CamMapping.h"
#include "passes/Canonicalize.h"
#include "passes/CimFuseOps.h"
#include "passes/CimPartition.h"
#include "passes/CimSimilarityMatching.h"
#include "passes/CimToLoops.h"
#include "passes/TorchToCim.h"
#include "runtime/ExecutionPlan.h"
#include "runtime/Interpreter.h"
#include "support/Error.h"

namespace c4cam::core {

CompiledKernel::CompiledKernel(std::shared_ptr<ir::Context> ctx,
                               ir::Module module, CompilerOptions options,
                               passes::MappingPlan plan)
    : ctx_(std::move(ctx)), module_(std::move(module)),
      options_(std::move(options)), plan_(plan)
{
    auto funcs = module_.functions();
    C4CAM_CHECK(!funcs.empty(), "compiled module has no functions");
    entry_ = funcs.front()->strAttr("sym_name");

    // Compile the plan eagerly so a kernel shared across threads runs
    // on an immutable plan with no lazy first-use race. The cache is
    // only dropped by mutable module() access, which (like any IR
    // mutation) is single-threaded by contract; the recompile then
    // happens on next use.
    executionPlan();
}

std::shared_ptr<const rt::ExecutionPlan>
tryCompilePlan(const ir::Module &module, const std::string &entry,
               const CompilerOptions &options, std::string *cache_key)
{
    if (options.treeWalkExecution)
        return nullptr;
    std::string key = PlanCache::makeKey(module, entry, options);
    if (cache_key)
        *cache_key = key;
    return PlanCache::instance().getOrCompile(key, [&] {
        // A module the plan compiler cannot handle falls back to the
        // tree walk -- same op vocabulary, so this only happens for
        // ops the interpreter would reject at runtime too.
        try {
            std::shared_ptr<const rt::ExecutionPlan> plan =
                rt::ExecutionPlan::compile(module, entry);
            if (options.optimizePlans && options.planOpt.anyEnabled())
                plan = rt::PlanOptimizer::optimize(*plan,
                                                   options.planOpt);
            return plan;
        } catch (const CompilerError &) {
            return std::shared_ptr<const rt::ExecutionPlan>();
        }
    });
}

ir::Module &
CompiledKernel::module()
{
    // The caller may rewrite the IR: drop the kernel's own cached plan
    // AND the process-wide cache entry, so no future consumer of the
    // old (module, options) shape can be served a plan that no longer
    // matches this kernel's IR.
    if (!planCacheKey_.empty()) {
        PlanCache::instance().invalidate(planCacheKey_);
        planCacheKey_.clear();
    }
    plan_stream_.reset();
    planCompileFailed_ = false;
    return module_;
}

std::shared_ptr<const rt::ExecutionPlan>
CompiledKernel::executionPlan()
{
    // Compiled once (re-compiled lazily after mutable module() access
    // so IR rewrites are picked up) and shared by
    // run()/sessions/engines.
    if (!plan_stream_ && !planCompileFailed_ &&
        !options_.treeWalkExecution) {
        plan_stream_ =
            tryCompilePlan(module_, entry_, options_, &planCacheKey_);
        planCompileFailed_ = plan_stream_ == nullptr;
    }
    return plan_stream_;
}

void
validateKernelArgs(ir::Block *body, const std::string &entry,
                   const std::vector<rt::BufferPtr> &args)
{
    C4CAM_CHECK(body->numArguments() == args.size(),
                "kernel '" << entry << "' takes " << body->numArguments()
                << " arguments, got " << args.size());
    for (std::size_t i = 0; i < args.size(); ++i) {
        C4CAM_CHECK(args[i], "argument " << i << " is null");
        ir::Type t = body->argument(i)->type();
        if (!t.isTensor())
            continue;
        const auto &shape = t.shape();
        const auto &got = args[i]->shape();
        bool matches = shape.size() == got.size();
        for (std::size_t d = 0; matches && d < shape.size(); ++d)
            matches = shape[d] == got[d];
        C4CAM_CHECK(matches, "argument " << i << " shape mismatch for '"
                    << entry << "': kernel was compiled for a different "
                    "tensor shape (recompile or reshape the input)");
    }
}

ExecutionResult
runKernelOnce(ir::Module &module, const std::string &entry,
              const CompilerOptions &options,
              const std::vector<rt::BufferPtr> &args,
              const rt::ExecutionPlan *plan)
{
    ExecutionResult result;
    std::vector<rt::RtValue> rt_args;
    rt_args.reserve(args.size());
    for (const rt::BufferPtr &arg : args)
        rt_args.emplace_back(arg);

    if (options.treeWalkExecution)
        plan = nullptr;

    if (options.hostOnly) {
        if (plan) {
            rt::PlanFrame frame = plan->makeFrame();
            result.outputs = plan->run(frame, nullptr, rt_args);
        } else {
            rt::Interpreter interpreter(module, nullptr);
            result.outputs = interpreter.callFunction(entry, rt_args);
        }
        return result;
    }

    sim::CamDevice device(options.spec);
    device.setFusionModel(options.fusionModel);
    if (plan) {
        rt::PlanFrame frame = plan->makeFrame();
        result.outputs = plan->run(frame, &device, rt_args);
    } else {
        rt::Interpreter interpreter(module, &device);
        result.outputs = interpreter.callFunction(entry, rt_args);
    }
    result.perf = device.report();
    result.perf.queriesServed = 1;
    return result;
}

ExecutionResult
CompiledKernel::run(const std::vector<rt::BufferPtr> &args)
{
    return runKernelOnce(module_, entry_, options_, args,
                         executionPlan().get());
}

ExecutionSession
CompiledKernel::createSession(const std::vector<rt::BufferPtr> &setup_args)
{
    return ExecutionSession(ctx_, module_, options_, entry_, setup_args,
                            executionPlan());
}

std::unique_ptr<ServingEngine>
CompiledKernel::createServingEngine(
    const std::vector<rt::BufferPtr> &setup_args, int replicas)
{
    return std::make_unique<ServingEngine>(ctx_, module_, options_, entry_,
                                           setup_args, replicas,
                                           executionPlan());
}

std::unique_ptr<AsyncServingEngine>
CompiledKernel::createAsyncServingEngine(
    const std::vector<rt::BufferPtr> &setup_args, int replicas,
    const AsyncServingOptions &async_options)
{
    return std::make_unique<AsyncServingEngine>(
        createServingEngine(setup_args, replicas), async_options);
}

Compiler::Compiler(CompilerOptions options) : options_(std::move(options))
{
    options_.spec.validate();
}

void
Compiler::buildPipeline(ir::PassManager &pm) const
{
    pm.add<passes::TorchToCimPass>();
    pm.add<passes::CimFuseOpsPass>();
    pm.add<passes::CimSimilarityMatchingPass>();
    if (options_.hostOnly) {
        if (options_.lowerToLoops)
            pm.add<passes::CimToLoopsPass>();
        else
            pm.add<passes::CimPartitionPass>(options_.spec);
    } else {
        pm.add<passes::CamMappingPass>(options_.spec);
    }
    pm.add<passes::CanonicalizePass>();
}

CompiledKernel
Compiler::compileTorchScript(const std::string &source)
{
    auto ctx = std::make_shared<ir::Context>();
    dialects::loadAllDialects(*ctx);
    ir::Module module = frontend::parseTorchScriptModule(*ctx, source);
    return compileModule(std::move(ctx), std::move(module));
}

CompiledKernel
Compiler::compileTorchScript(const std::string &source,
                             const frontend::ShapeOverrides &overrides)
{
    auto ctx = std::make_shared<ir::Context>();
    dialects::loadAllDialects(*ctx);
    ir::Module module =
        frontend::parseTorchScriptModule(*ctx, source, &overrides);
    return compileModule(std::move(ctx), std::move(module));
}

CompiledKernel
Compiler::compileModule(std::shared_ptr<ir::Context> ctx,
                        ir::Module module)
{
    ir::verifyModule(module);

    ir::PassManager pm;
    pm.enableTiming(options_.timePasses);
    buildPipeline(pm);

    std::vector<std::pair<std::string, std::string>> dumps;
    if (options_.dumpIntermediates) {
        pm.setAfterPassCallback(
            [&dumps](const std::string &pass, ir::Module &m) {
                dumps.emplace_back(pass, m.str());
            });
    }

    // Grab the mapping plan out of the cam-map pass before pm owns it.
    // (buildPipeline added it last for the device path.)
    pm.run(module);

    passes::MappingPlan plan;
    if (!options_.hostOnly) {
        // Recompute the plan from the kernel shapes for reporting; the
        // pass computed the same values during mapping.
        // The entry function signature carries (query, stored) shapes.
        auto funcs = module.functions();
        C4CAM_CHECK(!funcs.empty(), "module lost its functions");
        ir::Block *body = &funcs.front()->region(0).front();
        if (body->numArguments() >= 2) {
            ir::Type query_t = body->argument(0)->type();
            ir::Type stored_t = body->argument(1)->type();
            if (query_t.isTensor() && stored_t.isTensor() &&
                query_t.rank() == 2 && stored_t.rank() == 2) {
                plan = passes::MappingPlan::compute(
                    options_.spec, query_t.shape()[0],
                    stored_t.shape()[0], stored_t.shape()[1]);
            }
        }
    }

    CompiledKernel kernel(std::move(ctx), std::move(module), options_,
                          plan);
    kernel.dumps_ = std::move(dumps);
    kernel.timings_ = pm.timings();
    return kernel;
}

} // namespace c4cam::core
