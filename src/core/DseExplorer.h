#ifndef C4CAM_CORE_DSEEXPLORER_H
#define C4CAM_CORE_DSEEXPLORER_H

/**
 * @file
 * Design-space exploration driver.
 *
 * The paper's headline workflow (§IV-C): "the automation provided by
 * C4CAM allows for quick exploration of different software and
 * hardware implementations ... without any application recoding
 * effort". This driver sweeps architecture candidates for one kernel,
 * runs each on the simulator, and reports the latency/power/energy
 * Pareto frontier.
 */

#include <functional>
#include <string>
#include <vector>

#include "arch/ArchSpec.h"
#include "core/Compiler.h"

namespace c4cam::core {

/** One evaluated design point. */
struct DsePoint
{
    arch::ArchSpec spec;
    sim::PerfReport perf;
    bool paretoOptimal = false; ///< on the latency/power frontier

    double latencyNs() const { return perf.queryLatencyNs; }
    double powerMw() const { return perf.avgPowerMw(); }
    double energyPj() const { return perf.queryEnergyPj; }
};

/** Result of one exploration sweep. */
struct DseResult
{
    std::vector<DsePoint> points;

    /** Points on the latency/power Pareto frontier, fastest first. */
    std::vector<DsePoint> frontier() const;

    /** Fastest point (min latency). */
    const DsePoint &bestLatency() const;

    /** Most frugal point (min average power). */
    const DsePoint &bestPower() const;

    /** Min energy-delay-product point. */
    const DsePoint &bestEdp() const;

    /** Render a fixed-width summary table. */
    std::string table() const;
};

/**
 * Compiles @p source once per candidate spec and executes it with
 * @p args on a fresh simulator.
 *
 * The sweep is embarrassingly parallel across candidates: every task
 * builds its own ir::Context, compiler, module and device, sharing
 * only the (read-only) source text and inputs. With @p threads > 1
 * candidates are evaluated on a worker pool; results are keyed by
 * candidate index, so the outcome is bit-identical to the serial
 * sweep regardless of completion order.
 */
class DseExplorer
{
  public:
    /**
     * Sweep explicit candidates.
     * @param threads worker count: 1 (default) sweeps inline, 0 uses
     *        one worker per hardware thread, N>1 uses N workers.
     */
    DseResult explore(const std::string &source,
                      const std::vector<arch::ArchSpec> &candidates,
                      const std::vector<rt::BufferPtr> &args,
                      int threads = 1) const;

    /**
     * Standard paper sweep: subarray sizes {16..256} x the four
     * optimization targets (20 candidates, §IV-C1).
     */
    static std::vector<arch::ArchSpec> standardCandidates();
};

} // namespace c4cam::core

#endif // C4CAM_CORE_DSEEXPLORER_H
