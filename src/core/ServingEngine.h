#ifndef C4CAM_CORE_SERVINGENGINE_H
#define C4CAM_CORE_SERVINGENGINE_H

/**
 * @file
 * Parallel query serving on replicated CAM devices.
 *
 * An ExecutionSession serves queries one at a time on one programmed
 * device. A ServingEngine scales that out across host threads: it
 * programs one device (paying setup once), replicates it with
 * CamDevice::cloneProgrammed() into N independent replicas, and drives
 * them behind a work queue with one worker thread per replica.
 *
 * @code
 *   core::CompiledKernel kernel = compiler.compileTorchScript(src);
 *   auto engine = kernel.createServingEngine({query0, stored}, 4);
 *   std::future<core::ExecutionResult> f = engine->submit({q, stored});
 *   std::vector<core::ExecutionResult> all =
 *       engine->runBatch(batches, 4);  // concurrency cap: 4 lanes
 *   core::ServingStats stats = engine->stats();  // qps, p50/p95
 * @endcode
 *
 * Accounting guarantees (locked by tests and bench/serving_throughput):
 *  - every served query's PerfReport is bit-identical to what a serial
 *    ExecutionSession::runQuery() reports for the same input: replicas
 *    are exact copies, each query runs on exactly one replica inside a
 *    fresh query window, and the simulated cost model is deterministic;
 *  - the aggregate report pays setup once (replication is free host
 *    work, not simulated device work) and sums the query windows over
 *    all served queries, exactly like a serial session.
 *
 * Threading model: the compiled module and the Interpreter over it are
 * shared read-only; each replica owns its CamDevice and ExecutionState
 * and serves at most one query at a time (enforced by the free-list).
 * Queries must not alias writable buffers across concurrent
 * submissions (inputs are read-only; outputs are freshly allocated per
 * query).
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/Compiler.h"
#include "core/ExecutionSession.h"
#include "core/QueryBackend.h"
#include "core/RetryPolicy.h"
#include "runtime/Buffer.h"
#include "runtime/ExecutionPlan.h"
#include "runtime/Interpreter.h"
#include "sim/CamDevice.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

namespace c4cam::core {

/**
 * N programmed device replicas behind a work queue.
 *
 * For host-only kernels (no cam ops, nothing to replicate) the engine
 * transparently falls back to independent full executions per query --
 * still parallel (runKernelOnce builds per-call state), just without
 * persistent devices; persistent() tells the modes apart.
 *
 * The engine borrows the kernel's lowered module: the CompiledKernel
 * must outlive (and not be moved while used by) its engines. Prefer
 * CompiledKernel::createServingEngine() over the raw constructor.
 */
class ServingEngine : public QueryBackend
{
  public:
    /**
     * @p plan is the kernel's compiled instruction stream; when null
     * (and tree-walk execution is not forced) the engine compiles its
     * own. Every replica replays the shared plan over its own slot
     * frame.
     */
    ServingEngine(std::shared_ptr<ir::Context> ctx, ir::Module &module,
                  CompilerOptions options, std::string entry,
                  const std::vector<rt::BufferPtr> &setup_args,
                  int replicas,
                  std::shared_ptr<const rt::ExecutionPlan> plan = nullptr);

    /** Waits for all in-flight queries, then tears down the pool. */
    ~ServingEngine() = default;

    ServingEngine(const ServingEngine &) = delete;
    ServingEngine &operator=(const ServingEngine &) = delete;

    /**
     * Enqueue one query asynchronously. The future resolves with the
     * result (or rethrows the execution error). Queries may complete
     * in any order; each runs on whichever replica frees up first.
     */
    std::future<ExecutionResult>
    submit(std::vector<rt::BufferPtr> args);

    /**
     * Serve @p queries and return results in input order.
     * @param threads concurrency cap; 0 (default) uses all replicas,
     *        1 degenerates to serial serving, values above the replica
     *        count are clamped.
     */
    std::vector<ExecutionResult>
    runBatch(const std::vector<std::vector<rt::BufferPtr>> &queries,
             int threads = 0);

    /**
     * Serve @p queries in fused multi-query passes of width @p k: the
     * stream is chunked into groups of (up to) k queries, each group
     * driven through one replica inside one fused device window
     * (CamDevice::beginFusedWindow). Chunks run concurrently across
     * replicas, capped by @p threads like runBatch. @return one
     * FusedBatchResult per chunk, in stream order; per-query results
     * and reports stay bit-identical to serial serving, and each
     * chunk's fused totals equal the sum of its query windows.
     */
    std::vector<FusedBatchResult>
    runFusedBatch(const std::vector<std::vector<rt::BufferPtr>> &queries,
                  int k, int threads = 0);

    /**
     * Validate @p args against the kernel signature without serving
     * (throws CompilerError on mismatch). The async front-end calls
     * this at submission time so malformed queries fail on the
     * submitter's stack instead of inside a dispatcher thread; its
     * dispatchers then serve through the non-revalidating
     * serve()/serveFusedChunk() primitives.
     */
    void
    validateQuery(const std::vector<rt::BufferPtr> &args) const override
    {
        validateKernelArgs(entryBody_, entry_, args);
    }

    /**
     * Acquire a replica, serve one query, record stats, release. Does
     * NOT revalidate @p args (the QueryBackend contract: validation
     * happened at admission; re-walking the kernel signature per
     * dispatch would be pure overhead on the hot path). With engine
     * tracing on and no caller-provided @p ctx, opens (and records)
     * this query's root span itself.
     */
    ExecutionResult
    serve(const std::vector<rt::BufferPtr> &args,
          const support::SpanContext *ctx = nullptr) override;

    /** Serve one fused chunk on a replica acquired for the chunk.
     *  @p ctxs, when non-null, holds one per-query tracing context for
     *  queries [begin, end). Like serve(), does not revalidate. */
    FusedBatchResult serveFusedChunk(
        const std::vector<std::vector<rt::BufferPtr>> &queries,
        std::size_t begin, std::size_t end,
        const std::vector<support::SpanContext> *ctxs = nullptr) override;

    /**
     * Record per-query lifecycle spans into @p collector: for every
     * served query a "query" root span with "execute" and "merge"
     * children (the execute span carries the device window's simulated
     * breakdown via sim::attachWindowBreakdown, and the plan back end
     * adds a "plan-replay" child). When the engine serves on behalf of
     * an AsyncServingEngine the async layer passes per-query contexts
     * instead and owns the root span. @p trace_id groups the spans;
     * 0 allocates a fresh id from the collector. Pass nullptr to turn
     * tracing off. Not thread-safe against in-flight queries: install
     * the collector before serving starts. Tracing never perturbs
     * outputs or PerfReports (locked by DifferentialFuzzTest).
     */
    void enableTracing(support::TraceCollector *collector,
                       std::uint64_t trace_id = 0) override;

    /** The active trace collector (nullptr when tracing is off). */
    support::TraceCollector *traceCollector() const { return trace_; }

    /// @name Fault tolerance
    /// @{
    /**
     * Bounded-retry policy for transient device faults: serve() will
     * re-attempt a query up to policy.maxAttempts times total when a
     * sim::TransientFault unwinds out of execution, with deterministic
     * exponential backoff between attempts. The failed replica's query
     * window is rolled back before the retry, so a recovered query's
     * output and PerfReport are bit-identical to a fault-free run.
     * Permanent c4cam::ExecutionErrors are never retried. Install
     * before serving starts.
     */
    void setRetryPolicy(RetryPolicy policy) { retryPolicy_ = policy; }

    const RetryPolicy &retryPolicy() const { return retryPolicy_; }

    /** Transient-fault re-serve attempts so far (also in
     *  stats().retries; cheap accessor for aggregating layers). */
    std::int64_t retriesAttempted() const
    {
        return retries_.load(std::memory_order_relaxed);
    }

    /**
     * Attach @p injector to every replica device (slot order, so
     * injector device ids are deterministic). No-op for host-only
     * engines, which have no devices to fault.
     */
    void attachFaultInjector(std::shared_ptr<sim::FaultInjector> injector);
    /// @}

    /** Aggregate metrics over everything served so far. */
    ServingStats stats() const override;

    /** One-time setup cost of the master replica. */
    const sim::PerfReport &setupReport() const override
    {
        return setupReport_;
    }

    bool persistent() const override { return persistent_; }
    int numReplicas() const { return static_cast<int>(replicas_.size()); }

    /** One serve() makes progress per replica. */
    int concurrency() const override { return numReplicas(); }

    std::int64_t queriesServed() const override;

  private:
    /** One programmed device copy + the post-setup execution state
     *  (the interpreter's SSA env or the plan's slot frame). */
    struct Replica
    {
        std::unique_ptr<sim::CamDevice> device;
        rt::ExecutionState state;
        rt::PlanFrame frame;
    };

    Replica *acquireReplica();
    void releaseReplica(Replica *replica);

    /** Serve one query on @p replica (fresh window, QueryOnly).
     *  @p ctx, when tracing, parents this query's execute/merge spans
     *  (the async front-end points it at its dispatch span). */
    ExecutionResult serveOn(Replica &replica,
                            const std::vector<rt::BufferPtr> &args,
                            const support::SpanContext *ctx = nullptr);

    void recordServed(const sim::PerfReport &perf, double latency_s,
                      std::chrono::steady_clock::time_point start,
                      std::chrono::steady_clock::time_point done);

    ir::Module *module_;
    CompilerOptions options_;
    std::string entry_;
    ir::Block *entryBody_ = nullptr;
    std::shared_ptr<ir::Context> ctx_;

    bool persistent_ = false;
    sim::PerfReport setupReport_;

    /// @name Tracing (off unless enableTracing() installed a collector)
    /// @{
    support::TraceCollector *trace_ = nullptr;
    std::uint64_t traceId_ = 0;
    /// @}

    /** Shared read-only executor over the module. */
    std::unique_ptr<rt::Interpreter> interpreter_;

    /** Shared compiled instruction stream (null in tree-walk mode). */
    std::shared_ptr<const rt::ExecutionPlan> plan_;

    /** Replica storage (index 0 is the master that ran setup). */
    std::vector<std::unique_ptr<Replica>> replicas_;

    /// @name Free-list of idle replicas
    /// @{
    mutable std::mutex replicaMutex_;
    std::condition_variable replicaFree_;
    std::vector<Replica *> freeReplicas_;
    /// @}

    /// @name Fault tolerance
    /// @{
    RetryPolicy retryPolicy_;
    /** Transient-fault re-serve attempts (stats().retries). */
    std::atomic<std::int64_t> retries_{0};
    /// @}

    /// @name Serving statistics (guarded by statsMutex_)
    /// @{
    mutable std::mutex statsMutex_;
    sim::PerfReport aggregate_;
    std::int64_t queriesServed_ = 0;
    /** Bounded window over the most recent queries: stats() sorts it
     *  per call and a serving engine can live for millions of
     *  queries. */
    support::LatencyWindow latenciesUs_;
    bool anyServed_ = false;
    std::chrono::steady_clock::time_point firstSubmit_;
    std::chrono::steady_clock::time_point lastDone_;
    /// @}

    /** The pool backing submit()/runBatch()/runFusedBatch(), created
     *  lazily on first use: the async front-end dispatches through
     *  serve()/serveFusedChunk() on its own threads and must not pay
     *  one parked pool worker per replica for the engine's lifetime.
     *  Declared last: destruction drains in-flight work while the
     *  replicas and stats above are still alive. */
    support::ThreadPool &pool();
    std::mutex poolMutex_;
    std::unique_ptr<support::ThreadPool> pool_;
};

} // namespace c4cam::core

#endif // C4CAM_CORE_SERVINGENGINE_H
