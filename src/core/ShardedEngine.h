#ifndef C4CAM_CORE_SHARDEDENGINE_H
#define C4CAM_CORE_SHARDEDENGINE_H

/**
 * @file
 * Scatter-gather serving across M programmed CAM shards.
 *
 * A single CamDevice bounds the stored-vector count by one
 * accelerator's subarray budget. ShardedEngine partitions the stored
 * axis into M contiguous row slices, compiles one kernel instance per
 * slice (same source, the stored parameter's shape overridden to the
 * slice -- frontend::ShapeOverrides), programs each instance into its
 * own ServingEngine, and serves each query by scattering it to every
 * shard and merging the per-shard top-k lists on the host:
 *
 *   core::ShardedEngine engine(options, source, {query0, stored},
 *                              {.shards = 4});
 *   core::ExecutionResult r = engine.serve({query, stored});
 *   // r.outputs = (values, indices) -- indices on the GLOBAL stored
 *   // axis, bit-identical to one big device serving `stored` whole.
 *
 * Exactness (locked by the sharded differential tests): slices are
 * contiguous, so local -> global index remapping (+ slice.begin) is
 * monotone within a shard; each shard's k-list is the global ranking
 * restricted to that shard's rows, truncated to k; and the single
 * device's topk breaks ties toward the lower index
 * (support::topKOrderedBefore matches host::topk's stable sort), so
 * the M-way merge (support::mergeTopK) reproduces the single-device
 * (values, indices) outputs bit-identically. Values are computed
 * row-locally, hence unchanged by where the row lives.
 *
 * Accounting: the per-query PerfReport is the deterministic shard
 * aggregation of sim::aggregateShardReports -- latency is the max
 * over shards (they search in parallel), energy and traffic counters
 * sum in fixed shard order. It is NOT the report of one big device:
 * per-search cell energy scales with the physical subarray geometry,
 * so M small devices are honestly cheaper per search. Outputs are
 * where the bit-identity contract lives.
 *
 * Tracing: each query's root span gains a "scatter" child (covering
 * the parallel shard fan-out; the shards' execute/merge spans parent
 * under it) and a "shard-merge" child (the host-side k-way merge)
 * that tile the scatter+merge interval exactly -- the same
 * shared-time-point telescoping the other serving layers use.
 *
 * Implements QueryBackend, so the async front-end serves through M
 * shards the same way it serves through one replica pool.
 */

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/Compiler.h"
#include "core/QueryBackend.h"
#include "core/RetryPolicy.h"
#include "core/ServingEngine.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

namespace c4cam::core {

/** One contiguous slice of the stored-vector axis. */
struct ShardSlice
{
    std::int64_t begin = 0; ///< first global stored row of the slice
    std::int64_t rows = 0;  ///< number of stored rows in the slice
};

/**
 * Partition of @c totalRows stored vectors into contiguous,
 * near-equal slices. Deterministic: the first `totalRows % shards`
 * slices get one extra row.
 */
struct ShardPlan
{
    std::int64_t totalRows = 0;
    std::vector<ShardSlice> slices;

    /**
     * Split @p total_rows into @p shards contiguous slices. Every
     * slice must keep at least @p min_rows rows (the kernel's k: a
     * shard must be able to answer top-k locally); throws
     * CompilerError when the split would starve a shard.
     */
    static ShardPlan compute(std::int64_t total_rows, int shards,
                             std::int64_t min_rows);
};

struct ShardedEngineOptions
{
    /** Number of device shards the stored axis is split across. */
    int shards = 2;
    /** Programmed replicas per shard (shard-level ServingEngine). */
    int replicasPerShard = 1;
    /** Which kernel parameter holds the stored (sharded) tensor. */
    std::size_t storedArgIndex = 1;
    /** Pin the scatter workers to distinct CPUs (best effort; see
     *  support::ThreadPoolOptions::pinThreads). */
    bool pinShardWorkers = false;

    /// @name Fault tolerance
    /// @{
    /**
     * Serve queries from surviving shards when some shards are
     * quarantined, instead of failing: the merged top-k covers only
     * the healthy slices and the result is explicitly marked partial
     * (ExecutionResult::partial, PerfReport::coverage < 1, a
     * "degraded" trace span). Off = a quarantined shard fails the
     * query fast (the circuit-breaker benefit: no repeated timeouts
     * against dead hardware).
     */
    bool allowDegraded = false;

    /** Consecutive failures that quarantine a shard. */
    int quarantineThreshold = 3;

    /** Cooldown before a quarantined shard is probed for
     *  re-admission (one probe query at a time). */
    std::int64_t cooldownMs = 100;

    /** Transient-fault retry policy installed on every shard-level
     *  ServingEngine (retries happen inside the shard, under the
     *  query's scatter span). */
    RetryPolicy retryPolicy;

    /** Fault injector attached to every shard device (slice order,
     *  then replica order within a shard -- deterministic injector
     *  device ids). Null = no fault injection. */
    std::shared_ptr<sim::FaultInjector> faultInjector;
    /// @}
};

/**
 * QueryBackend over M shard-level ServingEngines plus a host-side
 * exact top-k merge. Thread-safe: concurrent serves scatter onto a
 * shared worker pool and block on their own shard futures; the shard
 * engines' replica free-lists provide the per-shard serialization.
 */
class ShardedEngine : public QueryBackend
{
  public:
    /**
     * Compile @p source once per shard (stored parameter's leading
     * extent overridden to the slice size) and program each shard
     * with its row slice of @p setup_args[storedArgIndex]. The other
     * setup arguments are shared across shards unchanged. The kernel
     * must return exactly (values, indices) rank-2 tensors -- the
     * shardable shape -- and end in a top-k; both are verified here.
     */
    ShardedEngine(const CompilerOptions &options,
                  const std::string &source,
                  const std::vector<rt::BufferPtr> &setup_args,
                  const ShardedEngineOptions &sharding = {});

    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    /** Validates against the UNSHARDED signature: callers pass the
     *  same arguments they would pass a single big device. */
    void
    validateQuery(const std::vector<rt::BufferPtr> &args) const override;

    /** Scatter @p args to every shard, merge the top-k lists.
     *  Outputs carry global indices; perf is the shard aggregation. */
    ExecutionResult
    serve(const std::vector<rt::BufferPtr> &args,
          const support::SpanContext *ctx = nullptr) override;

    /** One fused window per shard over queries [begin, end); each
     *  query merged exactly like serve(). The fused totals are the
     *  sums of the merged per-query reports. */
    FusedBatchResult serveFusedChunk(
        const std::vector<std::vector<rt::BufferPtr>> &queries,
        std::size_t begin, std::size_t end,
        const std::vector<support::SpanContext> *ctxs = nullptr) override;

    void enableTracing(support::TraceCollector *collector,
                       std::uint64_t trace_id = 0) override;

    ServingStats stats() const override;

    /** Aggregated one-time setup over the shards (max latency, summed
     *  energy/writes -- sim::aggregateShardReports). */
    const sim::PerfReport &setupReport() const override
    {
        return setupReport_;
    }

    bool persistent() const override { return persistent_; }

    /** One serve() makes progress per shard-replica set. */
    int concurrency() const override { return replicasPerShard_; }

    std::int64_t queriesServed() const override;

    int numShards() const { return static_cast<int>(shards_.size()); }
    const ShardPlan &shardPlan() const { return plan_; }

    /** k of the kernel's final top-k (discovered from the lowered
     *  reference module). */
    std::int64_t topK() const { return topK_; }

    /** Ordering of the final top-k: true = larger values first. On
     *  the CAM path this is false (the device ranks distances),
     *  whatever the torch-level annotation said. */
    bool mergeLargest() const { return mergeLargest_; }

    /** Live health snapshot (stats() / tests). */
    struct ShardHealth
    {
        int consecutiveFailures = 0;
        bool quarantined = false;
    };
    ShardHealth shardHealth(std::size_t s) const;

  private:
    struct Shard
    {
        ShardSlice slice;
        /** O(1) row-slice view into the setup-time stored tensor
         *  (shaped to the shard signature; the query body never reads
         *  it). */
        rt::BufferPtr storedSlice;
        /** Declared before the engine: the engine borrows the
         *  kernel's module, so it must be destroyed first. */
        std::unique_ptr<CompiledKernel> kernel;
        std::unique_ptr<ServingEngine> engine;

        /// @name Circuit-breaker health (guarded by healthMutex_)
        /// @{
        int consecutiveFailures = 0;
        bool quarantined = false;
        std::chrono::steady_clock::time_point quarantinedAt{};
        /** A probe query is in flight; prevents a herd of concurrent
         *  probes against a possibly-still-dead shard. */
        bool probing = false;
        /// @}
    };

    /**
     * Pick the shards this query scatters to: healthy shards plus at
     * most one probe per quarantined shard whose cooldown expired.
     * Throws ExecutionError (fail fast) when a shard is quarantined,
     * still cooling down, and degraded serving is off.
     */
    std::vector<std::size_t> selectActiveShards();

    /** Health bookkeeping after a shard answered. */
    void recordShardSuccess(std::size_t s);

    /**
     * Health bookkeeping after a shard failed: counts toward
     * quarantine, and on a healthy->quarantined transition bumps the
     * counter and records a self-rooted "shard-quarantine" marker
     * span (when @p col is tracing).
     */
    void recordShardFailure(std::size_t s, support::TraceCollector *col,
                            std::uint64_t trace_id,
                            std::uint64_t query_id);

    /** @p args with the stored parameter swapped for shard @p s's
     *  programmed slice view. */
    std::vector<rt::BufferPtr>
    shardArgs(const std::vector<rt::BufferPtr> &args, std::size_t s) const;

    /** Merge one query's per-shard (values, indices) outputs into
     *  global-axis outputs; the per-shard perfs aggregate into the
     *  merged report. @p shard_ids names the shard each result came
     *  from (index remapping needs the slice origin) -- a degraded
     *  merge passes only the survivors. When the ids cover fewer rows
     *  than the plan, the result is marked partial with the covered
     *  row fraction in perf.coverage. */
    ExecutionResult
    mergeShardResults(const std::vector<ExecutionResult> &shard_results,
                      const std::vector<std::size_t> &shard_ids) const;

    void recordServed(const sim::PerfReport &perf,
                      std::chrono::steady_clock::time_point start,
                      std::chrono::steady_clock::time_point done);

    int replicasPerShard_ = 1;
    std::size_t storedArgIndex_ = 1;
    bool allowDegraded_ = false;
    int quarantineThreshold_ = 3;
    std::int64_t cooldownMs_ = 100;
    ShardPlan plan_;
    std::int64_t topK_ = 0;
    bool mergeLargest_ = false;
    bool persistent_ = false;

    /** Full-size reference kernel: provides the unsharded signature
     *  for validateQuery() and the lowered module the final top-k's
     *  (k, largest) are discovered from. Never executed. */
    std::unique_ptr<CompiledKernel> reference_;
    ir::Block *entryBody_ = nullptr;
    std::string entry_;

    std::vector<Shard> shards_;
    sim::PerfReport setupReport_;

    /// @name Fault-recovery accounting
    /// @{
    mutable std::mutex healthMutex_;
    std::int64_t quarantines_ = 0;     ///< guarded by healthMutex_
    std::int64_t degradedServes_ = 0;  ///< guarded by healthMutex_
    /// @}

    /// @name Tracing (off unless enableTracing() installed a collector)
    /// @{
    support::TraceCollector *trace_ = nullptr;
    std::uint64_t traceId_ = 0;
    /// @}

    /// @name Serving statistics (guarded by statsMutex_)
    /// @{
    mutable std::mutex statsMutex_;
    sim::PerfReport aggregate_;
    std::int64_t queriesServed_ = 0;
    support::LatencyWindow latenciesUs_;
    bool anyServed_ = false;
    std::chrono::steady_clock::time_point firstSubmit_;
    std::chrono::steady_clock::time_point lastDone_;
    /// @}

    /** Scatter pool: shards * replicasPerShard workers, so every
     *  replica of every shard can be busy at once. Deadlock-free by
     *  sizing: a task only blocks waiting for a shard replica, and
     *  replicas are only held by running tasks. Declared last so
     *  destruction drains in-flight scatters while the shards above
     *  are still alive. */
    std::unique_ptr<support::ThreadPool> pool_;
};

} // namespace c4cam::core

#endif // C4CAM_CORE_SHARDEDENGINE_H
