/**
 * @file
 * Process-wide ExecutionPlan cache (see PlanCache.h).
 */

#include "core/PlanCache.h"

#include <sstream>

#include "core/Compiler.h"
#include "ir/IR.h"
#include "support/Trace.h"

namespace c4cam::core {

PlanCache &
PlanCache::instance()
{
    static PlanCache cache;
    return cache;
}

std::string
PlanCache::makeKey(const ir::Module &module, const std::string &entry,
                   const CompilerOptions &options)
{
    // FNV-1a over the printed module: the lowered text carries the
    // shapes, constants and mapping structure, so two kernels with the
    // same digest + length are the same compilation input. Everything
    // else that changes what tryCompilePlan produces is appended
    // verbatim.
    const std::string text = module.str();
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    std::ostringstream key;
    key << std::hex << h << std::dec << ":" << text.size() << ":"
        << entry << ":" << options.hostOnly << options.lowerToLoops
        << options.optimizePlans << options.planOpt.constantFolding
        << options.planOpt.subviewHoisting
        << options.planOpt.superopFusion
        << options.planOpt.deadSlotElimination;
    return key.str();
}

std::shared_ptr<const rt::ExecutionPlan>
PlanCache::getOrCompile(
    const std::string &key,
    const std::function<std::shared_ptr<const rt::ExecutionPlan>()>
        &compile)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        ++hits_;
        if (trace_) {
            support::TraceEvent ev;
            ev.name = "plan-cache-hit";
            ev.traceId = trace_->newTraceId();
            ev.spanId = trace_->newSpanId();
            ev.startUs = trace_->nowUs();
            ev.durUs = 0.0;
            trace_->record(ev);
        }
        return it->second->second;
    }
    // Compile under the lock: N racing consumers of one shape perform
    // exactly one compilation; the losers briefly block, then share
    // the winner's (immutable) plan.
    ++misses_;
    const double start_us = trace_ ? trace_->nowUs() : 0.0;
    std::shared_ptr<const rt::ExecutionPlan> plan = compile();
    if (trace_) {
        support::TraceEvent ev;
        ev.name = "plan-compile";
        ev.traceId = trace_->newTraceId();
        ev.spanId = trace_->newSpanId();
        ev.startUs = start_us;
        ev.durUs = trace_->nowUs() - start_us;
        trace_->record(ev);
    }
    lru_.emplace_front(key, std::move(plan));
    index_[key] = lru_.begin();
    evictOverCapacityLocked();
    return lru_.front().second;
}

bool
PlanCache::invalidate(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end())
        return false;
    lru_.erase(it->second);
    index_.erase(it);
    return true;
}

void
PlanCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
}

void
PlanCache::setCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity == 0 ? 1 : capacity;
    evictOverCapacityLocked();
}

std::size_t
PlanCache::capacity() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
}

void
PlanCache::setTraceCollector(support::TraceCollector *collector)
{
    std::lock_guard<std::mutex> lock(mutex_);
    trace_ = collector;
}

PlanCacheStats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    PlanCacheStats stats;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.evictions = evictions_;
    stats.entries = lru_.size();
    return stats;
}

void
PlanCache::evictOverCapacityLocked()
{
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++evictions_;
    }
}

} // namespace c4cam::core
