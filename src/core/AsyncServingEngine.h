#ifndef C4CAM_CORE_ASYNCSERVINGENGINE_H
#define C4CAM_CORE_ASYNCSERVINGENGINE_H

/**
 * @file
 * Asynchronous serving front-end with bounded admission and dynamic
 * micro-batching.
 *
 * A synchronous backend serves queries as fast as its devices allow
 * but has no admission decision anywhere: producers outpace it and
 * in-flight work grows without bound. AsyncServingEngine adds that
 * layer over any core::QueryBackend -- a ServingEngine replica pool,
 * a single ExecutionSession, or a ShardedEngine fanning out across M
 * devices:
 *
 *   producers -> BoundedQueue (capacity + overflow policy)
 *             -> dispatcher threads (one per backend concurrency slot
 *                by default)
 *             -> QueryBackend (replicas / session / shards)
 *
 * @code
 *   auto engine = kernel.createAsyncServingEngine(setup_args, 4, {});
 *   std::future<core::ExecutionResult> f = engine->submit(args);
 *   engine->trySubmit(args2, [](core::ExecutionResult r,
 *                               std::exception_ptr err) { ... });
 *   engine->drain();                   // wait for everything accepted
 *   core::AsyncServingStats s = engine->stats();
 * @endcode
 *
 * Dynamic micro-batching: each dispatcher pops a *group* from the
 * queue -- one query when the queue is shallow, up to fuseMaxK when
 * at least fuseMinDepth queries are waiting -- and serves a group of
 * two or more as one fused window through the backend's
 * serveFusedChunk primitive. Fused amortization therefore kicks
 * in automatically exactly when load builds up, and single-query
 * latency is not taxed when the system is idle. Per-query outputs stay
 * bit-identical to serial ExecutionSession replay in both regimes, and
 * under the default sim::FusionModel::ExactSerial so do the per-query
 * PerfReports (the fused-window invariant the sync tests lock); under
 * TrueFused, fused groups honestly report their cheaper windows
 * (drive charged once per pass), so reports depend on group shape.
 *
 * Shutdown semantics: shutdown() (and the destructor) closes the
 * queue -- new submissions fail fast -- then lets the dispatchers
 * drain every already-accepted query before joining them. Accepted
 * work is never lost; every future/callback eventually fires.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/QueryBackend.h"
#include "support/BoundedQueue.h"
#include "support/Error.h"
#include "support/Stats.h"
#include "support/Trace.h"

namespace c4cam::core {

/**
 * A query refused by the admission layer (queue full under the
 * Reject policy, displaced by DropOldest, or the engine shutting
 * down) -- as opposed to a query that was accepted and then failed
 * during execution, which surfaces as a plain CompilerError. Callers
 * that shed load (benches, the CLI) catch this type specifically so
 * real execution failures are never silently counted as refusals.
 */
class AdmissionError : public CompilerError
{
  public:
    using CompilerError::CompilerError;
};

/**
 * A query shed because its enqueue wait exceeded the configured
 * deadline: the dispatcher found it already expired when it came off
 * the queue and refused to spend device time on an answer nobody is
 * waiting for. A subtype of AdmissionError (the query never reached a
 * device; load-shedding callers handle both the same way), but typed
 * so deadline sheds can be told apart from queue-full rejections.
 */
class DeadlineExceeded : public AdmissionError
{
  public:
    using AdmissionError::AdmissionError;
};

/** Admission / micro-batching knobs of the async front-end. */
struct AsyncServingOptions
{
    /** Submission-queue capacity (clamped to >= 1). */
    std::size_t queueCapacity = 64;

    /** What push() does when the queue is full. */
    support::OverflowPolicy policy = support::OverflowPolicy::Block;

    /** Max queries coalesced into one fused dispatch window; 1
     *  disables micro-batching. */
    int fuseMaxK = 8;

    /** Queue depth at which dispatchers start coalescing (below it
     *  every dispatch is a single query). */
    std::size_t fuseMinDepth = 2;

    /** Dispatcher thread count; 0 means one per backend concurrency
     *  slot (QueryBackend::concurrency()). */
    int dispatchers = 0;

    /**
     * Default per-query deadline in microseconds on the ENQUEUE WAIT:
     * a query still queued after this long is shed with a typed
     * DeadlineExceeded when a dispatcher pops it, before any device
     * work (admission-time check -- a query that started executing is
     * never abandoned mid-serve). 0 (the default) disables deadlines;
     * submit()/trySubmit() can override per query.
     */
    std::int64_t deadlineUs = 0;

    /**
     * Span collector for per-query lifecycle tracing; nullptr (the
     * default) turns tracing off. When set, every query records
     * "admit" / "enqueue-wait" / "dispatch" / "deliver" spans under a
     * root "query" span here (plus the wrapped engine's "execute" /
     * "merge" children and per-group "fuse-decision" markers), with
     * the execute span carrying the device window's simulated
     * breakdown. Tracing is zero-overhead when off -- every tracing
     * site is a predictable null-check -- and never perturbs outputs
     * or PerfReports. The collector must outlive the engine.
     */
    support::TraceCollector *trace = nullptr;
};

/** Counters and latency percentiles of the async front-end. */
struct AsyncServingStats
{
    /** The wrapped backend's metrics (simulated aggregate, qps over
     *  served queries, execution-latency percentiles). */
    ServingStats serving;

    /// @name Admission counters (monotone; submitted is ticketed
    /// before the queue decides, so submitted >= accepted + rejected
    /// transiently and == at quiescence; accepted >= completed in
    /// every snapshot)
    /// @{
    std::int64_t submitted = 0; ///< submission attempts
    std::int64_t accepted = 0;  ///< entered the queue
    std::int64_t rejected = 0;  ///< refused at admission (Reject/closed)
    std::int64_t dropped = 0;   ///< displaced by DropOldest
    std::int64_t completed = 0; ///< completions delivered (ok or error)
    std::int64_t failed = 0;    ///< completions that carried an error
    /// @}

    /// @name Fault-tolerance counters
    /// @{
    /** Queries shed with DeadlineExceeded: their enqueue wait blew
     *  the deadline before a dispatcher could serve them. Counted in
     *  failed/completed too (every shed is a delivered error); also
     *  mirrored into serving.deadlineSheds. */
    std::int64_t deadlineSheds = 0;
    /** Per-query re-serves after a fused window aborted: the fallback
     *  path re-dispatched each member individually. Counts queries,
     *  not windows; distinct from serving.retries (the backend's
     *  transient-fault re-attempts). */
    std::int64_t fallbackRetries = 0;
    /// @}

    /// @name Micro-batching counters
    /// @{
    std::int64_t fusedWindows = 0;     ///< dispatch groups of >= 2
    std::int64_t fusedQueries = 0;     ///< queries served fused
    std::int64_t singleDispatches = 0; ///< groups of exactly 1
    /// @}

    std::size_t queueDepth = 0;    ///< current backlog
    std::size_t queueCapacity = 0; ///< configured bound

    /// @name Latency split per query (us): time waiting in the queue
    /// vs time executing on a replica. Computed over a bounded window
    /// of the most recent queries (the engine keeps no per-query
    /// history beyond it).
    /// @{
    double p50EnqueueWaitUs = 0.0;
    double p95EnqueueWaitUs = 0.0;
    double p50ExecuteUs = 0.0;
    double p95ExecuteUs = 0.0;
    /// @}
};

/**
 * Bounded-queue admission + dispatcher threads over a QueryBackend.
 *
 * Thread-safe throughout: any number of producer threads may call
 * submit()/trySubmit()/submitBatch* concurrently with each other,
 * with drain(), with stats(), and with one shutdown() caller.
 */
class AsyncServingEngine
{
  public:
    /**
     * Per-query completion callback: exactly one of (result, error)
     * is meaningful -- error is nullptr on success. Served queries
     * complete on a dispatcher thread; admission-time failures
     * complete on the SUBMITTING thread (a query displaced by
     * DropOldest fails inside the displacing producer's submit call,
     * and a streaming slot that fails validation/admission fails
     * inside submitBatchStreaming). Keep callbacks cheap, reentrant
     * with respect to your own locks, and never call back into
     * blocking engine entry points from them.
     */
    using Completion =
        std::function<void(ExecutionResult result, std::exception_ptr error)>;

    /**
     * Take ownership of any synchronous backend (a ServingEngine, a
     * SingleSessionBackend, a ShardedEngine, ...) and put the bounded
     * queue + dispatchers in front of it. Prefer
     * CompiledKernel::createAsyncServingEngine() for the common
     * replica-pool case.
     */
    AsyncServingEngine(std::unique_ptr<QueryBackend> backend,
                       AsyncServingOptions options = {});

    /** shutdown(): closes admissions, drains accepted work, joins. */
    ~AsyncServingEngine();

    AsyncServingEngine(const AsyncServingEngine &) = delete;
    AsyncServingEngine &operator=(const AsyncServingEngine &) = delete;

    /**
     * Enqueue one query; the future resolves with the result, or
     * rethrows the execution error, or rethrows the admission error
     * (queue rejected the query / a DropOldest displacement evicted
     * it / the engine shut down first). Argument-shape validation
     * happens here, synchronously, so malformed submissions fail on
     * the caller's stack, never inside a dispatcher. Under the Block
     * policy this call waits for queue space -- that wait IS the
     * backpressure. @p deadline_us overrides the engine-wide
     * AsyncServingOptions::deadlineUs for this query (0 = use the
     * engine default; negative = explicitly no deadline).
     */
    std::future<ExecutionResult> submit(std::vector<rt::BufferPtr> args,
                                        std::int64_t deadline_us = 0);

    /**
     * Callback-flavored submission. @return false when the queue
     * rejected the query (Reject policy full, or shut down) -- the
     * callback is then never invoked. On true the callback fires
     * exactly once, including the DropOldest-eviction, deadline-shed
     * and shutdown-drain cases (as errors). @p deadline_us as in
     * submit().
     */
    bool trySubmit(std::vector<rt::BufferPtr> args, Completion callback,
                   std::int64_t deadline_us = 0);

    /** Future-flavored bulk submission, one future per query in
     *  input order (admission errors surface through the futures). */
    std::vector<std::future<ExecutionResult>>
    submitBatch(const std::vector<std::vector<rt::BufferPtr>> &queries);

    /**
     * Streaming bulk submission: @p on_result fires per query AS IT
     * FINISHES (any order, concurrently from dispatcher threads) with
     * the query's input-order index. Every index gets exactly one
     * completion -- admission rejections and per-query validation
     * errors are reported through that query's slot (with a null
     * result) rather than aborting the remaining submissions. Returns
     * once all queries are enqueued; pair with drain() to wait for
     * the completions.
     */
    void submitBatchStreaming(
        const std::vector<std::vector<rt::BufferPtr>> &queries,
        std::function<void(std::size_t index, ExecutionResult result,
                           std::exception_ptr error)>
            on_result);

    /**
     * Wait until every submission accepted so far has completed (or
     * been dropped) and the queue is empty. Safe to call repeatedly
     * and concurrently with producers -- it waits for *their*
     * submissions too, so quiesce producers first if you want a
     * point-in-time barrier.
     */
    void drain();

    /**
     * Graceful stop: close admissions (pushes fail from now on),
     * serve everything already accepted, join the dispatchers.
     * Idempotent; concurrent submitters see rejections, never UB.
     */
    void shutdown();

    /** True once shutdown() has begun; submissions fail from then on. */
    bool shuttingDown() const;

    AsyncServingStats stats() const;

    /** The wrapped synchronous backend (stats introspection etc.). */
    QueryBackend &backend() { return *backend_; }
    const QueryBackend &backend() const { return *backend_; }

    int numDispatchers() const
    {
        return static_cast<int>(dispatchers_.size());
    }
    const AsyncServingOptions &options() const { return options_; }

  private:
    using Clock = std::chrono::steady_clock;

    /** One accepted query riding the queue. */
    struct Pending
    {
        std::vector<rt::BufferPtr> args;
        std::promise<ExecutionResult> promise;
        Completion callback; ///< used instead of promise when set
        bool hasCallback = false;
        Clock::time_point enqueued;
        /** Effective enqueue-wait deadline (us); <= 0 = none.
         *  Resolved at submission (per-query override or the engine
         *  default), so the dispatcher just compares. */
        std::int64_t deadlineUs = 0;

        /// @name Tracing (zero / epoch when tracing is off)
        /// @{
        std::uint64_t queryId = 0;
        std::uint64_t rootSpan = 0;
        Clock::time_point admitStart; ///< submit-entry timestamp
        /// @}
    };

    /** Admission outcome shared by the submit flavors. */
    enum class Admission { Accepted, Rejected };

    Admission enqueue(Pending pending);
    void dispatchLoop();
    /** @p dispatch_done, when not the epoch default, additionally
     *  records a "deliver" span from that timestamp to now (the
     *  dispatcher path); admission-time deliveries pass nothing. */
    void deliver(Pending &pending, ExecutionResult result,
                 Clock::time_point dispatch_done = {});
    void deliverError(Pending &pending, std::exception_ptr error,
                      Clock::time_point dispatch_done = {});
    /** Record the root "query" span (and optional "deliver" child)
     *  for a completing pending; no-op when tracing is off. */
    void recordCompletionSpans(const Pending &pending,
                               Clock::time_point dispatch_done);
    void recordLatency(double wait_us, double exec_us);
    void notifyProgress();

    std::unique_ptr<QueryBackend> backend_;
    AsyncServingOptions options_;
    support::BoundedQueue<Pending> queue_;

    /** Trace id grouping every span of this engine (0 = tracing off;
     *  shared with the wrapped backend's execute/merge spans). */
    std::uint64_t traceId_ = 0;

    /// @name Monotone counters (atomic: read by stats(), bumped from
    /// producer and dispatcher threads)
    /// @{
    std::atomic<std::int64_t> submitted_{0};
    std::atomic<std::int64_t> accepted_{0};
    std::atomic<std::int64_t> rejected_{0};
    std::atomic<std::int64_t> dropped_{0};
    std::atomic<std::int64_t> completed_{0};
    std::atomic<std::int64_t> failed_{0};
    std::atomic<std::int64_t> fusedWindows_{0};
    std::atomic<std::int64_t> fusedQueries_{0};
    std::atomic<std::int64_t> singleDispatches_{0};
    std::atomic<std::int64_t> deadlineSheds_{0};
    std::atomic<std::int64_t> fallbackRetries_{0};
    /// @}

    /// @name Latency samples (guarded by latencyMutex_)
    ///
    /// Bounded windows over the most recent queries
    /// (support::LatencyWindow): a long-lived engine must not grow
    /// memory per query served (that is the whole point of the
    /// bounded queue), and stats() sorts the window, so the window
    /// also caps the per-poll cost. Percentiles therefore describe
    /// the most recent queries -- the operationally interesting view
    /// for a serving dashboard.
    /// @{
    mutable std::mutex latencyMutex_;
    support::LatencyWindow enqueueWaitsUs_;
    support::LatencyWindow executeUs_;
    /// @}

    /// @name Drain/shutdown coordination
    /// @{
    mutable std::mutex stateMutex_;
    std::condition_variable progress_;
    std::atomic<bool> shutdown_{false};
    /** Serializes close+join; makes shutdown() idempotent under races. */
    std::mutex shutdownMutex_;
    /// @}

    /** Declared last so the loop threads die before the members they
     *  touch (join happens in shutdown(), called by the destructor). */
    std::vector<std::thread> dispatchers_;
};

} // namespace c4cam::core

#endif // C4CAM_CORE_ASYNCSERVINGENGINE_H
