#ifndef C4CAM_CORE_EXECUTIONSESSION_H
#define C4CAM_CORE_EXECUTIONSESSION_H

/**
 * @file
 * Persistent CAM execution sessions: program the device once, serve
 * many queries.
 *
 * The paper's execution model (§III-D) splits cost into a one-time
 * *setup* phase (programming stored data into subarrays) and a
 * per-query *search* phase. CompiledKernel::run() pays both on every
 * call because it rebuilds the whole CamDevice. An ExecutionSession
 * keeps the device and interpreter alive across calls instead:
 *
 * @code
 *   core::CompiledKernel kernel = compiler.compileTorchScript(src);
 *   core::ExecutionSession session =
 *       kernel.createSession({query0, stored});   // setup happens here
 *   for (auto &query : queries) {
 *       core::ExecutionResult r = session.runQuery({query, stored});
 *       // r.perf.queryLatencyNs covers THIS query only; setup fields
 *       // describe the shared one-time programming cost.
 *   }
 *   sim::PerfReport total = session.aggregateReport();
 *   // total.amortizedLatencyNs() = (setup + all queries) / #queries
 * @endcode
 *
 * Accounting rules:
 *  - setup fields of every report describe the session's one-time
 *    programming cost (identical across queries);
 *  - query fields of a runQuery() report cover exactly that call, and
 *    are bit-identical to what a fresh single-shot run() would report
 *    for the same input (the device's query window is reset, not
 *    recovered by subtracting snapshots);
 *  - aggregateReport() sums the query fields over all served queries
 *    and sets queriesServed, so avgQueryLatencyNs() /
 *    amortizedLatencyNs() describe the batch.
 *
 * The session borrows the kernel's lowered module: the CompiledKernel
 * must outlive (and not be moved while used by) its sessions.
 */

#include <memory>
#include <string>
#include <vector>

#include "core/Compiler.h"
#include "runtime/Buffer.h"
#include "runtime/ExecutionPlan.h"
#include "runtime/Interpreter.h"
#include "sim/CamDevice.h"
#include "sim/Timing.h"
#include "support/Trace.h"

namespace c4cam::core {

/**
 * Outcome of serving one fused multi-query batch: the per-query
 * results (outputs always bit-identical to serial serving) plus the
 * fused window's accounting. fusedReport renders the window as a
 * PerfReport with fusedBatchK set, so the amortized per-query
 * attribution (drive/setup shares) is available alongside the batch
 * totals. Under sim::FusionModel::ExactSerial (default) the totals
 * equal the sum of the per-query serial windows exactly and the
 * per-query reports match serial serving bit for bit; under TrueFused
 * the totals come in strictly below the serial sum (drive charged
 * once per pass) and queries 2..K report honestly cheaper windows.
 */
struct FusedBatchResult
{
    std::vector<ExecutionResult> results;
    sim::FusedWindow fused;
    sim::PerfReport fusedReport;
};

/**
 * Setup cost of a *non-persistent* fused batch: every full re-run
 * re-pays setup, so the synthesized fused report must carry the
 * summed setup fields of the per-query reports -- never claim free
 * setup. Shared by the session and engine fallback paths.
 */
sim::PerfReport
nonPersistentSetupTotal(const std::vector<ExecutionResult> &results);

/**
 * A live kernel instance on a programmed CAM device.
 *
 * Sessions require the cam-mapped device path. For host-only kernels
 * (no cam ops, nothing to keep programmed) the session transparently
 * falls back to full re-execution per query; persistent() tells the
 * two modes apart.
 *
 * Execution back end: when a compiled ExecutionPlan is available (the
 * default), the setup prologue and every query are *replayed* through
 * the plan's instruction stream over a persistent slot frame; with
 * CompilerOptions::treeWalkExecution the session walks the IR through
 * the Interpreter instead. Both paths produce bit-identical outputs
 * and PerfReports.
 */
class ExecutionSession
{
  public:
    /**
     * Create a session for @p entry of @p module and run the setup
     * phase with @p setup_args (one buffer per function parameter; the
     * stored-data arguments are programmed into the device here).
     * Prefer CompiledKernel::createSession() over calling this
     * directly. @p plan is the kernel's compiled instruction stream;
     * when null (and tree-walk execution is not forced) the session
     * compiles its own.
     */
    ExecutionSession(std::shared_ptr<ir::Context> ctx, ir::Module &module,
                     CompilerOptions options, std::string entry,
                     const std::vector<rt::BufferPtr> &setup_args,
                     std::shared_ptr<const rt::ExecutionPlan> plan =
                         nullptr);

    ExecutionSession(ExecutionSession &&) = default;
    ExecutionSession &operator=(ExecutionSession &&) = default;

    /**
     * Serve one query batch: re-enters only the search/read/merge
     * portion of the kernel. @p args must match the function signature;
     * the stored-data argument is ignored by the query body (the
     * device keeps the data programmed at session creation).
     */
    ExecutionResult runQuery(const std::vector<rt::BufferPtr> &args);

    /** Serve @p batches in order; one ExecutionResult per entry. */
    std::vector<ExecutionResult>
    runBatch(const std::vector<std::vector<rt::BufferPtr>> &batches);

    /**
     * Serve @p queries as ONE fused multi-query device pass: the
     * device opens a fused accounting window over the K queries
     * (CamDevice::beginFusedWindow) and amortizes the drive/setup
     * attribution across them. Each query still runs in its own query
     * window and outputs are always bit-identical to serial runQuery()
     * calls. What the accounting means depends on
     * CompilerOptions::fusionModel: under ExactSerial (default) the
     * per-query reports match serial serving bit for bit and the fused
     * totals equal their sum; under TrueFused the pass charges each
     * subarray's precharge/drive once, so the totals come in strictly
     * below the serial sum. Host-only sessions synthesize the fused
     * accounting from the per-query reports (no device pass to fuse,
     * so TrueFused changes nothing there).
     */
    FusedBatchResult
    runFusedBatch(const std::vector<std::vector<rt::BufferPtr>> &queries);

    /**
     * Validate @p args against the kernel signature without serving
     * (throws CompilerError on mismatch) -- the admission-time check
     * runQuery() repeats. Lets adapters (SingleSessionBackend) fail
     * malformed queries on the submitter's stack.
     */
    void
    validateQuery(const std::vector<rt::BufferPtr> &args) const
    {
        validateKernelArgs(entryBody_, entry_, args);
    }

    /** One-time setup cost (query fields are zero). */
    const sim::PerfReport &setupReport() const { return setupReport_; }

    /**
     * Cumulative report: setup once + query fields summed over all
     * served queries, with queriesServed set for the per-query and
     * amortized aggregates.
     */
    sim::PerfReport aggregateReport() const;

    /** Number of runQuery() calls served so far. */
    std::int64_t queriesServed() const { return queriesServed_; }

    /**
     * True when the device stays programmed across queries (cam-mapped
     * kernels); false for the host-only fallback that re-runs the full
     * kernel (and re-pays setup) on every call.
     */
    bool persistent() const { return persistent_; }

    /** True when queries replay the compiled plan (vs tree-walking). */
    bool usesPlan() const { return plan_ != nullptr; }

    /**
     * Record per-query lifecycle spans ("query" > "execute"/"merge",
     * plus "plan-replay" from the plan back end) into @p collector.
     * The execute span carries the device window's simulated breakdown
     * (sim::attachWindowBreakdown). Pass nullptr to turn tracing off
     * again; with no collector every tracing site is an inlined
     * null-check no-op, and recorded spans never perturb outputs or
     * PerfReports (locked by DifferentialFuzzTest running traced).
     * Call between queries, not concurrently with runQuery().
     */
    void enableTracing(support::TraceCollector *collector);

    /** The active trace collector (nullptr when tracing is off). */
    support::TraceCollector *traceCollector() const { return trace_; }

    /** The simulated device; nullptr in host-only sessions. */
    sim::CamDevice *device() { return device_.get(); }

  private:
    ExecutionResult runNonPersistent(const std::vector<rt::BufferPtr> &args);
    void accumulate(const sim::PerfReport &perf);

    std::shared_ptr<ir::Context> ctx_;
    ir::Module *module_;
    CompilerOptions options_;
    std::string entry_;
    /** Entry block of the kernel function (cached: the module is
     *  immutable for the session's lifetime). */
    ir::Block *entryBody_ = nullptr;

    std::unique_ptr<sim::CamDevice> device_;
    /** Immutable view over the module (shareable across threads). */
    std::unique_ptr<rt::Interpreter> interpreter_;
    /** This session's per-execution state (SSA env from the setup run). */
    rt::ExecutionState state_;
    /** Compiled instruction stream (null in tree-walk mode). */
    std::shared_ptr<const rt::ExecutionPlan> plan_;
    /** Persistent slot frame (the plan path's SSA environment). */
    rt::PlanFrame frame_;

    bool persistent_ = false;
    sim::PerfReport setupReport_;
    sim::PerfReport aggregate_;
    std::int64_t queriesServed_ = 0;

    /// @name Tracing (off unless enableTracing() installed a collector)
    /// @{
    support::TraceCollector *trace_ = nullptr;
    std::uint64_t traceId_ = 0;
    /// @}
};

} // namespace c4cam::core

#endif // C4CAM_CORE_EXECUTIONSESSION_H
