#ifndef C4CAM_CORE_PLANCACHE_H
#define C4CAM_CORE_PLANCACHE_H

/**
 * @file
 * Process-wide shape-keyed cache of compiled (and optimized)
 * ExecutionPlans.
 *
 * Plan compilation + the optimizer pipeline run once per distinct
 * kernel shape, not once per consumer: ExecutionSession, ServingEngine
 * replicas, ShardedEngine per-shard compiles (M shards with equal
 * slice sizes collapse to one compile + M-1 hits) and DseExplorer
 * candidate sweeps all funnel through core::tryCompilePlan, which
 * keys into this cache.
 *
 * Keying: the canonical key digests the module fingerprint (the
 * printed IR -- shapes, constants and mapping structure are all part
 * of the lowered text, so ShapeOverrides and ArchSpec differences are
 * naturally covered), the entry symbol, and every CompilerOptions
 * field that changes what tryCompilePlan would produce (hostOnly,
 * lowerToLoops, optimizePlans + per-pass toggles). Same canonical key
 * => interchangeable plan.
 *
 * Concurrency: getOrCompile() compiles under the cache mutex, so N
 * racing session creations of the same shape perform exactly one
 * compilation -- the losers block briefly and then share the winner's
 * plan (plans are immutable and replayed via caller-owned frames, so
 * sharing is free). Eviction is LRU with a fixed entry capacity.
 */

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace c4cam::ir {
class Module;
}
namespace c4cam::rt {
class ExecutionPlan;
}
namespace c4cam::support {
class TraceCollector;
}

namespace c4cam::core {

struct CompilerOptions;

/** Counters surfaced through ServingStats and c4cam-run --json. */
struct PlanCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0; ///< current resident plans
};

class PlanCache
{
  public:
    /** The process-wide instance. */
    static PlanCache &instance();

    /** Canonical cache key for (module, entry, options). */
    static std::string makeKey(const ir::Module &module,
                               const std::string &entry,
                               const CompilerOptions &options);

    /**
     * Look up @p key; on a miss, run @p compile under the cache lock
     * and insert its result. Failed compiles (nullptr) are cached too,
     * so a kernel outside the plan vocabulary is not re-tried by every
     * session. Emits a "plan-compile" span on miss and a
     * "plan-cache-hit" span on hit when a trace collector is attached.
     */
    std::shared_ptr<const rt::ExecutionPlan> getOrCompile(
        const std::string &key,
        const std::function<std::shared_ptr<const rt::ExecutionPlan>()>
            &compile);

    /** Drop one entry; true when it was resident. Used by
     *  CompiledKernel's mutable module() access so a rewritten module
     *  can never serve a stale plan. */
    bool invalidate(const std::string &key);

    /** Drop every entry (tests). Counters are not reset. */
    void clear();

    /** Resize the LRU capacity, evicting as needed. */
    void setCapacity(std::size_t capacity);
    std::size_t capacity() const;

    /** Attach (or detach, nullptr) the collector that receives
     *  plan-compile / plan-cache-hit spans. */
    void setTraceCollector(support::TraceCollector *collector);

    PlanCacheStats stats() const;

  private:
    PlanCache() = default;

    void evictOverCapacityLocked();

    using Entry =
        std::pair<std::string, std::shared_ptr<const rt::ExecutionPlan>>;

    mutable std::mutex mutex_;
    std::list<Entry> lru_; ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index_;
    std::size_t capacity_ = 128;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    support::TraceCollector *trace_ = nullptr;
};

} // namespace c4cam::core

#endif // C4CAM_CORE_PLANCACHE_H
