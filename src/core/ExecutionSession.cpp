#include "core/ExecutionSession.h"

#include "support/Error.h"

namespace c4cam::core {

ExecutionSession::ExecutionSession(std::shared_ptr<ir::Context> ctx,
                                   ir::Module &module,
                                   CompilerOptions options,
                                   std::string entry,
                                   const std::vector<rt::BufferPtr>
                                       &setup_args)
    : ctx_(std::move(ctx)), module_(&module), options_(std::move(options)),
      entry_(std::move(entry))
{
    ir::Operation *func = module_->lookupFunction(entry_);
    C4CAM_CHECK(func, "session kernel has no function '" << entry_ << "'");
    entryBody_ = &func->region(0).front();
    validateKernelArgs(entryBody_, entry_, setup_args);

    persistent_ = !options_.hostOnly &&
                  rt::Interpreter::hasPhaseMarkers(func);
    if (!persistent_)
        return; // fall back to full re-execution per query

    device_ = std::make_unique<sim::CamDevice>(options_.spec);
    interpreter_ = std::make_unique<rt::Interpreter>(*module_);
    state_ = rt::ExecutionState(device_.get());
    interpreter_->callFunction(state_, entry_, rt::toRtValues(setup_args),
                               rt::Interpreter::ExecPhase::SetupOnly);
    setupReport_ = device_->report();
    aggregate_ = setupReport_;
}

ExecutionResult
ExecutionSession::runQuery(const std::vector<rt::BufferPtr> &args)
{
    validateKernelArgs(entryBody_, entry_, args);
    if (!persistent_)
        return runNonPersistent(args);

    // Reset the query accounting window so this report's query fields
    // cover exactly this call (and match a single-shot run bit-for-bit).
    device_->beginQueryWindow();
    ExecutionResult result;
    result.outputs =
        interpreter_->callFunction(state_, entry_, rt::toRtValues(args),
                                   rt::Interpreter::ExecPhase::QueryOnly);
    result.perf = device_->report();
    result.perf.queriesServed = 1;
    accumulate(result.perf);
    ++queriesServed_;
    return result;
}

ExecutionResult
ExecutionSession::runNonPersistent(const std::vector<rt::BufferPtr> &args)
{
    ExecutionResult result = runKernelOnce(*module_, entry_, options_, args);
    accumulate(result.perf);
    ++queriesServed_;
    return result;
}

void
ExecutionSession::accumulate(const sim::PerfReport &perf)
{
    if (persistent_) {
        aggregate_.addQueryWindow(perf);
    } else {
        // Every non-persistent call pays setup again; surface that in
        // the aggregate so amortization reflects reality.
        aggregate_.addFullRun(perf);
    }
}

std::vector<ExecutionResult>
ExecutionSession::runBatch(
    const std::vector<std::vector<rt::BufferPtr>> &batches)
{
    std::vector<ExecutionResult> results;
    results.reserve(batches.size());
    for (const auto &args : batches)
        results.push_back(runQuery(args));
    return results;
}

sim::PerfReport
ExecutionSession::aggregateReport() const
{
    sim::PerfReport report = aggregate_;
    report.queriesServed = queriesServed_;
    return report;
}

} // namespace c4cam::core
