#include "core/ExecutionSession.h"

#include "support/Error.h"

namespace c4cam::core {

namespace {

std::vector<rt::RtValue>
toRtValues(const std::vector<rt::BufferPtr> &args)
{
    std::vector<rt::RtValue> rt_args;
    rt_args.reserve(args.size());
    for (const rt::BufferPtr &arg : args)
        rt_args.emplace_back(arg);
    return rt_args;
}

} // namespace

ExecutionSession::ExecutionSession(std::shared_ptr<ir::Context> ctx,
                                   ir::Module &module,
                                   CompilerOptions options,
                                   std::string entry,
                                   const std::vector<rt::BufferPtr>
                                       &setup_args)
    : ctx_(std::move(ctx)), module_(&module), options_(std::move(options)),
      entry_(std::move(entry))
{
    ir::Operation *func = module_->lookupFunction(entry_);
    C4CAM_CHECK(func, "session kernel has no function '" << entry_ << "'");
    entryBody_ = &func->region(0).front();
    validateArgs(setup_args);

    persistent_ = !options_.hostOnly &&
                  rt::Interpreter::hasPhaseMarkers(func);
    if (!persistent_)
        return; // fall back to full re-execution per query

    device_ = std::make_unique<sim::CamDevice>(options_.spec);
    interpreter_ =
        std::make_unique<rt::Interpreter>(*module_, device_.get());
    interpreter_->callFunction(entry_, toRtValues(setup_args),
                               rt::Interpreter::ExecPhase::SetupOnly);
    setupReport_ = device_->report();
    aggregate_ = setupReport_;
}

void
ExecutionSession::validateArgs(const std::vector<rt::BufferPtr> &args) const
{
    C4CAM_CHECK(entryBody_->numArguments() == args.size(),
                "kernel '" << entry_ << "' takes "
                << entryBody_->numArguments() << " arguments, got "
                << args.size());
    for (std::size_t i = 0; i < args.size(); ++i) {
        C4CAM_CHECK(args[i], "argument " << i << " is null");
        ir::Type t = entryBody_->argument(i)->type();
        if (!t.isTensor())
            continue;
        const auto &shape = t.shape();
        const auto &got = args[i]->shape();
        bool matches = shape.size() == got.size();
        for (std::size_t d = 0; matches && d < shape.size(); ++d)
            matches = shape[d] == got[d];
        C4CAM_CHECK(matches, "argument " << i << " shape mismatch for '"
                    << entry_ << "': kernel was compiled for a different "
                    "tensor shape (recompile or reshape the input)");
    }
}

ExecutionResult
ExecutionSession::runQuery(const std::vector<rt::BufferPtr> &args)
{
    validateArgs(args);
    if (!persistent_)
        return runNonPersistent(args);

    // Reset the query accounting window so this report's query fields
    // cover exactly this call (and match a single-shot run bit-for-bit).
    device_->beginQueryWindow();
    ExecutionResult result;
    result.outputs =
        interpreter_->callFunction(entry_, toRtValues(args),
                                   rt::Interpreter::ExecPhase::QueryOnly);
    result.perf = device_->report();
    result.perf.queriesServed = 1;
    accumulate(result.perf);
    ++queriesServed_;
    return result;
}

ExecutionResult
ExecutionSession::runNonPersistent(const std::vector<rt::BufferPtr> &args)
{
    ExecutionResult result = runKernelOnce(*module_, entry_, options_, args);
    accumulate(result.perf);
    ++queriesServed_;
    return result;
}

void
ExecutionSession::accumulate(const sim::PerfReport &perf)
{
    aggregate_.queryLatencyNs += perf.queryLatencyNs;
    aggregate_.queryEnergyPj += perf.queryEnergyPj;
    aggregate_.cellEnergyPj += perf.cellEnergyPj;
    aggregate_.senseEnergyPj += perf.senseEnergyPj;
    aggregate_.driveEnergyPj += perf.driveEnergyPj;
    aggregate_.mergeEnergyPj += perf.mergeEnergyPj;
    aggregate_.searches += perf.searches;
    if (!persistent_) {
        // Every non-persistent call pays setup again; surface that in
        // the aggregate so amortization reflects reality.
        aggregate_.setupLatencyNs += perf.setupLatencyNs;
        aggregate_.setupEnergyPj += perf.setupEnergyPj;
        aggregate_.writes += perf.writes;
        aggregate_.subarraysUsed = perf.subarraysUsed;
        aggregate_.subarraysAllocated = perf.subarraysAllocated;
        aggregate_.banksUsed = perf.banksUsed;
    }
}

std::vector<ExecutionResult>
ExecutionSession::runBatch(
    const std::vector<std::vector<rt::BufferPtr>> &batches)
{
    std::vector<ExecutionResult> results;
    results.reserve(batches.size());
    for (const auto &args : batches)
        results.push_back(runQuery(args));
    return results;
}

sim::PerfReport
ExecutionSession::aggregateReport() const
{
    sim::PerfReport report = aggregate_;
    report.queriesServed = queriesServed_;
    return report;
}

} // namespace c4cam::core
