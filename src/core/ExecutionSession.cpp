#include "core/ExecutionSession.h"

#include <algorithm>

#include "support/Error.h"

namespace c4cam::core {

sim::PerfReport
nonPersistentSetupTotal(const std::vector<ExecutionResult> &results)
{
    sim::PerfReport setup;
    for (const ExecutionResult &r : results) {
        setup.setupLatencyNs += r.perf.setupLatencyNs;
        setup.setupEnergyPj += r.perf.setupEnergyPj;
        setup.writes += r.perf.writes;
        // High-water marks, not last-run snapshots (same rule as
        // PerfReport::addFullRun): a heterogeneous batch must not let
        // the final run misreport utilization().
        setup.subarraysUsed =
            std::max(setup.subarraysUsed, r.perf.subarraysUsed);
        setup.subarraysAllocated =
            std::max(setup.subarraysAllocated, r.perf.subarraysAllocated);
        setup.banksUsed = std::max(setup.banksUsed, r.perf.banksUsed);
    }
    return setup;
}

ExecutionSession::ExecutionSession(
    std::shared_ptr<ir::Context> ctx, ir::Module &module,
    CompilerOptions options, std::string entry,
    const std::vector<rt::BufferPtr> &setup_args,
    std::shared_ptr<const rt::ExecutionPlan> plan)
    : ctx_(std::move(ctx)), module_(&module), options_(std::move(options)),
      entry_(std::move(entry)), plan_(std::move(plan))
{
    ir::Operation *func = module_->lookupFunction(entry_);
    C4CAM_CHECK(func, "session kernel has no function '" << entry_ << "'");
    entryBody_ = &func->region(0).front();
    validateKernelArgs(entryBody_, entry_, setup_args);

    if (options_.treeWalkExecution)
        plan_ = nullptr;
    else if (!plan_)
        plan_ = tryCompilePlan(*module_, entry_, options_);

    persistent_ = !options_.hostOnly &&
                  rt::Interpreter::hasPhaseMarkers(func);
    if (!persistent_)
        return; // fall back to full re-execution per query

    device_ = std::make_unique<sim::CamDevice>(options_.spec);
    device_->setFusionModel(options_.fusionModel);
    if (plan_) {
        frame_ = plan_->makeFrame();
        plan_->run(frame_, device_.get(), rt::toRtValues(setup_args),
                   rt::ExecutionPlan::ExecPhase::SetupOnly);
    } else {
        interpreter_ = std::make_unique<rt::Interpreter>(*module_);
        state_ = rt::ExecutionState(device_.get());
        interpreter_->callFunction(state_, entry_,
                                   rt::toRtValues(setup_args),
                                   rt::Interpreter::ExecPhase::SetupOnly);
    }
    setupReport_ = device_->report();
    aggregate_ = setupReport_;
}

void
ExecutionSession::enableTracing(support::TraceCollector *collector)
{
    trace_ = collector;
    traceId_ = collector ? collector->newTraceId() : 0;
}

ExecutionResult
ExecutionSession::runQuery(const std::vector<rt::BufferPtr> &args)
{
    validateKernelArgs(entryBody_, entry_, args);

    // Tracing is an id handout plus four clock reads per query when a
    // collector is installed, and three predictable null checks when
    // not -- it never touches the device or the result, so outputs and
    // PerfReports stay bit-identical either way.
    support::TraceCollector *col = trace_;
    std::uint64_t queryId = 0, rootSpan = 0, execSpan = 0;
    double t0 = 0.0;
    if (col) {
        queryId = col->newQueryId();
        rootSpan = col->newSpanId();
        execSpan = col->newSpanId();
        t0 = col->nowUs();
    }

    ExecutionResult result;
    if (!persistent_) {
        result = runNonPersistent(args);
    } else {
        // Reset the query accounting window so this report's query
        // fields cover exactly this call (and match a single-shot run
        // bit-for-bit).
        device_->beginQueryWindow();
        if (plan_) {
            if (col)
                frame_.trace =
                    support::SpanContext{col, traceId_, queryId, execSpan};
            result.outputs =
                plan_->run(frame_, device_.get(), rt::toRtValues(args),
                           rt::ExecutionPlan::ExecPhase::QueryOnly);
            if (col)
                frame_.trace = support::SpanContext{};
        } else {
            result.outputs = interpreter_->callFunction(
                state_, entry_, rt::toRtValues(args),
                rt::Interpreter::ExecPhase::QueryOnly);
        }
    }
    double e1 = col ? col->nowUs() : 0.0;
    if (persistent_) {
        // Merge stage: render the window into the report and fold it
        // into the session aggregate.
        result.perf = device_->report();
        result.perf.queriesServed = 1;
        accumulate(result.perf);
        ++queriesServed_;
    }
    if (col) {
        double m1 = col->nowUs();
        support::TraceEvent exec;
        exec.name = "execute";
        exec.traceId = traceId_;
        exec.queryId = queryId;
        exec.spanId = execSpan;
        exec.parentSpanId = rootSpan;
        exec.startUs = t0;
        exec.durUs = e1 - t0;
        sim::attachWindowBreakdown(exec, result.perf);
        col->record(exec);

        support::TraceEvent merge;
        merge.name = "merge";
        merge.traceId = traceId_;
        merge.queryId = queryId;
        merge.spanId = col->newSpanId();
        merge.parentSpanId = rootSpan;
        merge.startUs = e1;
        merge.durUs = m1 - e1;
        col->record(merge);

        support::TraceEvent root;
        root.name = "query";
        root.traceId = traceId_;
        root.queryId = queryId;
        root.spanId = rootSpan;
        root.startUs = t0;
        root.durUs = m1 - t0;
        col->record(root);
    }
    return result;
}

ExecutionResult
ExecutionSession::runNonPersistent(const std::vector<rt::BufferPtr> &args)
{
    ExecutionResult result =
        runKernelOnce(*module_, entry_, options_, args, plan_.get());
    accumulate(result.perf);
    ++queriesServed_;
    return result;
}

void
ExecutionSession::accumulate(const sim::PerfReport &perf)
{
    if (persistent_) {
        aggregate_.addQueryWindow(perf);
    } else {
        // Every non-persistent call pays setup again; surface that in
        // the aggregate so amortization reflects reality.
        aggregate_.addFullRun(perf);
    }
}

std::vector<ExecutionResult>
ExecutionSession::runBatch(
    const std::vector<std::vector<rt::BufferPtr>> &batches)
{
    std::vector<ExecutionResult> results;
    results.reserve(batches.size());
    for (const auto &args : batches)
        results.push_back(runQuery(args));
    return results;
}

FusedBatchResult
ExecutionSession::runFusedBatch(
    const std::vector<std::vector<rt::BufferPtr>> &queries)
{
    C4CAM_CHECK(!queries.empty(), "fused batch needs at least one query");
    // Validate everything up front: a malformed query must fail before
    // the fused window opens, not leave the device mid-batch.
    for (const auto &args : queries)
        validateKernelArgs(entryBody_, entry_, args);

    FusedBatchResult batch;
    batch.results.reserve(queries.size());

    if (!persistent_) {
        // Non-persistent fallback (host-only kernels, or device
        // kernels without phase markers): no programmed device to
        // open a fused window on; synthesize the fused accounting
        // from the per-query reports. Setup was re-paid per query, so
        // the fused report carries the summed setup, not this
        // session's (empty) one-time setup.
        for (const auto &args : queries)
            batch.results.push_back(runQuery(args));
        batch.fused.k = static_cast<std::int64_t>(queries.size());
        for (const auto &r : batch.results)
            batch.fused.addQueryReport(r.perf);
        batch.fusedReport =
            batch.fused.toReport(nonPersistentSetupTotal(batch.results));
        return batch;
    }

    device_->beginFusedWindow(static_cast<int>(queries.size()));
    try {
        for (const auto &args : queries)
            batch.results.push_back(runQuery(args));
    } catch (...) {
        // A failed query leaves the partial fused accounting
        // meaningless; discard it so the session stays servable.
        device_->abortFusedWindow();
        throw;
    }
    batch.fused = device_->endFusedWindow();
    batch.fusedReport = batch.fused.toReport(setupReport_);
    return batch;
}

sim::PerfReport
ExecutionSession::aggregateReport() const
{
    sim::PerfReport report = aggregate_;
    report.queriesServed = queriesServed_;
    return report;
}

} // namespace c4cam::core
