#ifndef C4CAM_CORE_SESSIONBACKEND_H
#define C4CAM_CORE_SESSIONBACKEND_H

/**
 * @file
 * The minimal QueryBackend: one ExecutionSession behind a mutex.
 *
 * An ExecutionSession serves queries one at a time on one programmed
 * device and is not thread-safe. SingleSessionBackend adapts it to
 * the QueryBackend seam -- serialize every serve through one lock,
 * mirror the serving-stats bookkeeping the replica pool keeps -- so
 * the async front-end (and anything else written against
 * QueryBackend) can drive a plain session without owning a replica
 * pool. Outputs and per-query PerfReports are bit-identical to
 * calling ExecutionSession::runQuery() directly: the adapter adds
 * accounting and tracing around the session, never inside it.
 */

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/ExecutionSession.h"
#include "core/QueryBackend.h"
#include "support/Stats.h"

namespace c4cam::core {

/**
 * QueryBackend over one ExecutionSession. concurrency() is 1: every
 * serve waits its turn on the session mutex.
 */
class SingleSessionBackend : public QueryBackend
{
  public:
    /** Take ownership of @p session (the device is already
     *  programmed). The session's own tracing stays off; this adapter
     *  records the execute/merge spans itself so async-provided span
     *  contexts parent correctly. */
    explicit SingleSessionBackend(ExecutionSession session);

    void
    validateQuery(const std::vector<rt::BufferPtr> &args) const override;

    ExecutionResult
    serve(const std::vector<rt::BufferPtr> &args,
          const support::SpanContext *ctx = nullptr) override;

    /**
     * One fused window through ExecutionSession::runFusedBatch. Span
     * granularity is the chunk: each query's execute span covers the
     * whole fused window (its completion waited for it), carrying
     * that query's own simulated breakdown.
     */
    FusedBatchResult serveFusedChunk(
        const std::vector<std::vector<rt::BufferPtr>> &queries,
        std::size_t begin, std::size_t end,
        const std::vector<support::SpanContext> *ctxs = nullptr) override;

    void enableTracing(support::TraceCollector *collector,
                       std::uint64_t trace_id = 0) override;

    ServingStats stats() const override;

    const sim::PerfReport &
    setupReport() const override
    {
        return session_.setupReport();
    }

    bool persistent() const override { return session_.persistent(); }
    int concurrency() const override { return 1; }
    std::int64_t queriesServed() const override;

    /** The wrapped session (single-threaded introspection only). */
    ExecutionSession &session() { return session_; }

  private:
    using Clock = std::chrono::steady_clock;

    /** Record execute+merge spans for one served query. Requires
     *  mutex_ held (the recorded ids come from the shared trace
     *  state). */
    void recordQuerySpans(const support::SpanContext &ctx,
                          const sim::PerfReport &perf, double start_us,
                          double exec_end_us, double merge_end_us,
                          std::int64_t fused_k);
    void recordServedLocked(Clock::time_point start,
                            Clock::time_point done);

    mutable std::mutex mutex_;
    ExecutionSession session_;

    /// @name Tracing (off unless enableTracing() installed a collector)
    /// @{
    support::TraceCollector *trace_ = nullptr;
    std::uint64_t traceId_ = 0;
    /// @}

    /// @name Serving statistics (guarded by mutex_; the simulated
    /// aggregate lives in the session itself)
    /// @{
    support::LatencyWindow latenciesUs_;
    bool anyServed_ = false;
    Clock::time_point firstSubmit_;
    Clock::time_point lastDone_;
    /// @}
};

} // namespace c4cam::core

#endif // C4CAM_CORE_SESSIONBACKEND_H
