#include "core/DseExplorer.h"

#include <algorithm>
#include <future>
#include <sstream>

#include "support/Error.h"
#include "support/ThreadPool.h"

namespace c4cam::core {

std::vector<DsePoint>
DseResult::frontier() const
{
    std::vector<DsePoint> out;
    for (const DsePoint &p : points)
        if (p.paretoOptimal)
            out.push_back(p);
    std::sort(out.begin(), out.end(),
              [](const DsePoint &a, const DsePoint &b) {
                  return a.latencyNs() < b.latencyNs();
              });
    return out;
}

const DsePoint &
DseResult::bestLatency() const
{
    C4CAM_CHECK(!points.empty(), "empty DSE result");
    return *std::min_element(points.begin(), points.end(),
                             [](const DsePoint &a, const DsePoint &b) {
                                 return a.latencyNs() < b.latencyNs();
                             });
}

const DsePoint &
DseResult::bestPower() const
{
    C4CAM_CHECK(!points.empty(), "empty DSE result");
    return *std::min_element(points.begin(), points.end(),
                             [](const DsePoint &a, const DsePoint &b) {
                                 return a.powerMw() < b.powerMw();
                             });
}

const DsePoint &
DseResult::bestEdp() const
{
    C4CAM_CHECK(!points.empty(), "empty DSE result");
    return *std::min_element(
        points.begin(), points.end(),
        [](const DsePoint &a, const DsePoint &b) {
            return a.perf.edpNanoJouleSeconds() <
                   b.perf.edpNanoJouleSeconds();
        });
}

std::string
DseResult::table() const
{
    std::ostringstream oss;
    char line[160];
    std::snprintf(line, sizeof(line), "%-8s %-16s %12s %12s %12s %8s\n",
                  "size", "target", "latency(ns)", "power(mW)",
                  "energy(pJ)", "pareto");
    oss << line;
    for (const DsePoint &p : points) {
        std::snprintf(line, sizeof(line),
                      "%3dx%-4d %-16s %12.2f %12.3f %12.1f %8s\n",
                      p.spec.rows, p.spec.cols,
                      arch::toString(p.spec.target), p.latencyNs(),
                      p.powerMw(), p.energyPj(),
                      p.paretoOptimal ? "*" : "");
        oss << line;
    }
    return oss.str();
}

std::vector<arch::ArchSpec>
DseExplorer::standardCandidates()
{
    std::vector<arch::ArchSpec> specs;
    for (int n : {16, 32, 64, 128, 256})
        for (arch::OptTarget target :
             {arch::OptTarget::Base, arch::OptTarget::Density,
              arch::OptTarget::Power, arch::OptTarget::PowerDensity})
            specs.push_back(arch::ArchSpec::dseSetup(n, target));
    return specs;
}

namespace {

/**
 * Compile + execute one candidate on fresh, task-local state. The
 * kernel's execution plan is compiled alongside it, so the sweep's
 * run() replays the slot-based instruction stream rather than
 * tree-walking the IR per candidate.
 */
DsePoint
evaluateCandidate(const std::string &source, const arch::ArchSpec &spec,
                  const std::vector<rt::BufferPtr> &args)
{
    CompilerOptions options;
    options.spec = spec;
    Compiler compiler(options);
    CompiledKernel kernel = compiler.compileTorchScript(source);
    ExecutionResult run = kernel.run(args);
    DsePoint point;
    point.spec = spec;
    point.perf = run.perf;
    return point;
}

} // namespace

DseResult
DseExplorer::explore(const std::string &source,
                     const std::vector<arch::ArchSpec> &candidates,
                     const std::vector<rt::BufferPtr> &args,
                     int threads) const
{
    C4CAM_CHECK(!candidates.empty(), "DSE sweep needs candidates");
    C4CAM_CHECK(threads >= 0, "DSE thread count must be >= 0");
    DseResult result;
    result.points.resize(candidates.size());
    if (threads == 1) {
        for (std::size_t i = 0; i < candidates.size(); ++i)
            result.points[i] =
                evaluateCandidate(source, candidates[i], args);
    } else {
        // One candidate per pool task; every task owns its context,
        // module and device, so the only shared data (source, args) is
        // read-only. Futures land by index: same order as serial.
        support::ThreadPool pool(static_cast<std::size_t>(threads));
        std::vector<std::future<DsePoint>> futures;
        futures.reserve(candidates.size());
        for (const arch::ArchSpec &spec : candidates)
            futures.push_back(pool.submit([&source, &spec, &args] {
                return evaluateCandidate(source, spec, args);
            }));
        for (std::size_t i = 0; i < futures.size(); ++i)
            result.points[i] = futures[i].get();
    }

    // Latency/power Pareto labeling: a point is dominated when some
    // other point is at least as good on both axes and better on one.
    for (DsePoint &p : result.points) {
        bool dominated = false;
        for (const DsePoint &q : result.points) {
            if (&p == &q)
                continue;
            bool no_worse = q.latencyNs() <= p.latencyNs() &&
                            q.powerMw() <= p.powerMw();
            bool better = q.latencyNs() < p.latencyNs() ||
                          q.powerMw() < p.powerMw();
            if (no_worse && better) {
                dominated = true;
                break;
            }
        }
        p.paretoOptimal = !dominated;
    }
    return result;
}

} // namespace c4cam::core
