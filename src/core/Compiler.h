#ifndef C4CAM_CORE_COMPILER_H
#define C4CAM_CORE_COMPILER_H

/**
 * @file
 * C4CAM public API: compile TorchScript to CAM-mapped IR and execute it
 * on the CAM simulator.
 *
 * Typical use:
 * @code
 *   arch::ArchSpec spec = arch::ArchSpec::dseSetup(32,
 *                                                  arch::OptTarget::Base);
 *   core::Compiler compiler({spec});
 *   core::CompiledKernel kernel = compiler.compileTorchScript(source);
 *   core::ExecutionResult result = kernel.run({queries, stored});
 *   // result.outputs, result.perf.queryLatencyNs, ...
 * @endcode
 */

#include <memory>
#include <string>
#include <vector>

#include "arch/ArchSpec.h"
#include "frontend/TorchScriptFrontend.h"
#include "ir/IR.h"
#include "ir/Pass.h"
#include "passes/CamMapping.h"
#include "runtime/Buffer.h"
#include "runtime/PlanOptimizer.h"
#include "sim/Timing.h"

namespace c4cam::rt {
class ExecutionPlan;
}

namespace c4cam::core {

/** Compiler configuration. */
struct CompilerOptions
{
    arch::ArchSpec spec;
    /** Stop lowering at the cim level (host execution path). */
    bool hostOnly = false;
    /** With hostOnly: lower all the way to scf loops (Fig. 3's
     *  "loops" pipeline) instead of the partitioned cim form. */
    bool lowerToLoops = false;
    /** Collect per-pass wall-clock timings. */
    bool timePasses = false;
    /** Dump IR after every pass (collected in CompiledKernel::dumps). */
    bool dumpIntermediates = false;
    /**
     * Execute through the tree-walking interpreter instead of the
     * compiled ExecutionPlan. Plans are the default (compile the
     * lowered module once, replay a slot-based instruction stream per
     * query); the tree walk is retained for differential testing --
     * outputs and simulated PerfReports are bit-identical between the
     * two back ends.
     */
    bool treeWalkExecution = false;
    /**
     * Run the rt::PlanOptimizer pass pipeline over compiled plans
     * (constant folding, subview hoisting, superop fusion, dead-slot
     * elimination -- see runtime/PlanOptimizer.h). Off = the raw 1:1
     * transcription of the lowered IR, kept for differential testing
     * (CLI: c4cam-run --no-plan-opt).
     */
    bool optimizePlans = true;
    /** Per-pass toggles, honored when optimizePlans is set. */
    rt::PlanOptOptions planOpt;
    /**
     * How fused multi-query windows charge the simulated device (see
     * sim::FusionModel). ExactSerial (default) keeps fused totals
     * bit-identical to the serial sum; TrueFused charges the
     * precharge/drive once per pass so fused batches come in strictly
     * below it (CLI: c4cam-run --fusion-model). Purely a device-model
     * knob: plan compilation and outputs are unaffected, so kernels
     * differing only in this option share PlanCache entries.
     */
    sim::FusionModel fusionModel = sim::FusionModel::ExactSerial;
};

/** Outcome of executing a compiled kernel. */
struct ExecutionResult
{
    std::vector<rt::RtValue> outputs;
    sim::PerfReport perf;

    /**
     * True when the result covers only part of the stored data: a
     * degraded sharded serve (core::ShardedEngine with allowDegraded)
     * merged top-k from surviving shards while quarantined shards
     * were skipped. perf.coverage then holds the covered row
     * fraction. Never silently partial: every other path leaves this
     * false.
     */
    bool partial = false;
};

class ExecutionSession;
class ServingEngine;
class AsyncServingEngine;
struct AsyncServingOptions;

/**
 * Execute @p entry of @p module once on fresh state: a new CamDevice
 * for the device path, host interpretation when @p options.hostOnly.
 * Shared by CompiledKernel::run() and non-persistent sessions so the
 * two paths cannot diverge in accounting. Thread-safe: every call
 * builds its own device and ExecutionState/PlanFrame; the module is
 * only read. When @p plan is non-null (and tree-walk execution is not
 * forced), the call replays the plan instead of walking the IR --
 * same outputs, same accounting, a fraction of the host time.
 */
ExecutionResult runKernelOnce(ir::Module &module, const std::string &entry,
                              const CompilerOptions &options,
                              const std::vector<rt::BufferPtr> &args,
                              const rt::ExecutionPlan *plan = nullptr);

/**
 * Validate @p args against the signature of kernel entry block
 * @p body: arity, non-null buffers, tensor shapes. Throws
 * CompilerError naming @p entry on mismatch. Shared by sessions and
 * the serving engine.
 */
void validateKernelArgs(ir::Block *body, const std::string &entry,
                        const std::vector<rt::BufferPtr> &args);

/**
 * The one plan-or-tree-walk policy, shared by CompiledKernel,
 * ExecutionSession and ServingEngine: compile @p entry of @p module
 * into an ExecutionPlan unless tree-walk execution is forced, falling
 * back to nullptr (= tree walk) when the module is outside the plan
 * compiler's vocabulary. Every call goes through the process-wide
 * PlanCache (see core/PlanCache.h), so sessions, serving replicas,
 * equal-slice shards and DSE candidates compiling the same (module,
 * entry, options) shape pay the compile -- and the optimizer pipeline
 * -- exactly once. @p cache_key, when non-null, receives the cache key
 * used (for later invalidation).
 */
std::shared_ptr<const rt::ExecutionPlan>
tryCompilePlan(const ir::Module &module, const std::string &entry,
               const CompilerOptions &options,
               std::string *cache_key = nullptr);

/**
 * A compiled kernel: owns the context and the lowered module.
 */
class CompiledKernel
{
  public:
    CompiledKernel(std::shared_ptr<ir::Context> ctx, ir::Module module,
                   CompilerOptions options, passes::MappingPlan plan);

    /**
     * The lowered module (cam level, or cim level when hostOnly).
     * Handing out the mutable module invalidates the cached execution
     * plan AND the kernel's process-wide PlanCache entry (callers may
     * rewrite the IR, e.g. retuning passes), so a rewritten module can
     * never serve a stale cached plan; the plan is recompiled from the
     * current module on next use. Read-only callers should go through
     * the const overload (e.g. via std::as_const), which keeps the
     * cached plan intact.
     */
    ir::Module &module();

    /** Read-only module access; the cached plan is preserved. */
    const ir::Module &module() const { return module_; }

    /** Static mapping summary (subarray/bank counts etc.). */
    const passes::MappingPlan &plan() const { return plan_; }

    /** Name of the kernel function. */
    const std::string &entryPoint() const { return entry_; }

    /**
     * Execute with fresh simulator state.
     * @param args one tensor per function parameter.
     */
    ExecutionResult run(const std::vector<rt::BufferPtr> &args);

    /**
     * Open a persistent execution session: allocates the device and
     * programs the stored data once (setup phase); each subsequent
     * ExecutionSession::runQuery() re-enters only the search body.
     * @param setup_args one tensor per function parameter; the stored
     *        tensor is programmed into CAM here.
     * The kernel must outlive (and not be moved while used by) the
     * session. See core/ExecutionSession.h for the accounting rules.
     */
    ExecutionSession
    createSession(const std::vector<rt::BufferPtr> &setup_args);

    /**
     * Open a parallel serving engine: programs one device (setup
     * phase), clones it into @p replicas programmed copies and serves
     * queries through a worker pool with one thread per replica. Each
     * served query's PerfReport is bit-identical to a serial
     * ExecutionSession::runQuery() of the same input. The kernel must
     * outlive the engine. See core/ServingEngine.h.
     */
    std::unique_ptr<ServingEngine>
    createServingEngine(const std::vector<rt::BufferPtr> &setup_args,
                        int replicas);

    /**
     * Open an asynchronous serving front-end: a serving engine with
     * @p replicas programmed copies behind a bounded submission queue
     * with backpressure and dynamic micro-batching (see
     * core/AsyncServingEngine.h for the admission and shutdown
     * semantics). The kernel must outlive the engine.
     */
    std::unique_ptr<AsyncServingEngine>
    createAsyncServingEngine(const std::vector<rt::BufferPtr> &setup_args,
                             int replicas,
                             const AsyncServingOptions &async_options);

    /**
     * The kernel's compiled ExecutionPlan: the lowered module walked
     * once into a slot-based instruction stream (see
     * runtime/ExecutionPlan.h). Compiled eagerly at kernel build time
     * and shared by run()/sessions/engines; nullptr when
     * options.treeWalkExecution is set (differential-testing mode) or
     * when plan compilation failed (execution then falls back to the
     * tree walk). A mutable module() access drops the cache; the
     * recompile happens on next use -- like the IR mutation that
     * motivated it, that path is single-threaded by contract.
     */
    std::shared_ptr<const rt::ExecutionPlan> executionPlan();

    /** IR snapshots per pass (when dumpIntermediates was set). */
    const std::vector<std::pair<std::string, std::string>> &dumps() const
    {
        return dumps_;
    }

    /** Per-pass timings (when timePasses was set). */
    const std::vector<ir::PassManager::Timing> &passTimings() const
    {
        return timings_;
    }

  private:
    friend class Compiler;

    std::shared_ptr<ir::Context> ctx_;
    ir::Module module_;
    CompilerOptions options_;
    passes::MappingPlan plan_;
    std::string entry_;
    /** Compiled instruction stream (see executionPlan()). */
    std::shared_ptr<const rt::ExecutionPlan> plan_stream_;
    /** PlanCache key of plan_stream_, for invalidation on mutable
     *  module() access; empty when no cache entry is held. */
    std::string planCacheKey_;
    /** Set when plan compilation failed (avoid re-trying per call). */
    bool planCompileFailed_ = false;
    std::vector<std::pair<std::string, std::string>> dumps_;
    std::vector<ir::PassManager::Timing> timings_;
};

/**
 * End-to-end C4CAM compiler driver (Fig. 3 of the paper).
 */
class Compiler
{
  public:
    explicit Compiler(CompilerOptions options);

    const CompilerOptions &options() const { return options_; }

    /** Compile TorchScript source through the full pipeline. */
    CompiledKernel compileTorchScript(const std::string &source);

    /**
     * Compile @p source with parameter shapes substituted per
     * @p overrides (frontend::ShapeOverrides). The mapping plan is
     * recomputed from the overridden shapes, so one kernel source can
     * be instanced at many stored-data sizes -- the sharding layer
     * compiles one instance per shard slice this way.
     */
    CompiledKernel
    compileTorchScript(const std::string &source,
                       const frontend::ShapeOverrides &overrides);

    /** Compile an already-imported torch-level module. */
    CompiledKernel compileModule(std::shared_ptr<ir::Context> ctx,
                                 ir::Module module);

    /**
     * Build the standard pass pipeline into @p pm
     * (torch-to-cim, cim-fuse-ops, cim-similarity-match, then either
     * cim-partition for host execution or cam-map for the device).
     */
    void buildPipeline(ir::PassManager &pm) const;

  private:
    CompilerOptions options_;
};

} // namespace c4cam::core

#endif // C4CAM_CORE_COMPILER_H
