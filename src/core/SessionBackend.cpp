#include "core/SessionBackend.h"

#include "support/Error.h"

namespace c4cam::core {

SingleSessionBackend::SingleSessionBackend(ExecutionSession session)
    : session_(std::move(session))
{
    // The adapter owns the span recording; double roots from the
    // session's own tracing would corrupt the trace tree.
    session_.enableTracing(nullptr);
}

void
SingleSessionBackend::validateQuery(
    const std::vector<rt::BufferPtr> &args) const
{
    session_.validateQuery(args);
}

void
SingleSessionBackend::enableTracing(support::TraceCollector *collector,
                                    std::uint64_t trace_id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    trace_ = collector;
    if (!collector)
        traceId_ = 0;
    else
        traceId_ = trace_id != 0 ? trace_id : collector->newTraceId();
}

void
SingleSessionBackend::recordQuerySpans(const support::SpanContext &ctx,
                                       const sim::PerfReport &perf,
                                       double start_us, double exec_end_us,
                                       double merge_end_us,
                                       std::int64_t fused_k)
{
    support::TraceCollector *col = ctx.collector;
    support::TraceEvent exec;
    exec.name = "execute";
    exec.traceId = ctx.traceId;
    exec.queryId = ctx.queryId;
    exec.spanId = col->newSpanId();
    exec.parentSpanId = ctx.parentSpanId;
    exec.startUs = start_us;
    exec.durUs = exec_end_us - start_us;
    exec.fusedK = fused_k;
    sim::attachWindowBreakdown(exec, perf);
    col->record(exec);

    support::TraceEvent merge;
    merge.name = "merge";
    merge.traceId = ctx.traceId;
    merge.queryId = ctx.queryId;
    merge.spanId = col->newSpanId();
    merge.parentSpanId = ctx.parentSpanId;
    merge.startUs = exec_end_us;
    merge.durUs = merge_end_us - exec_end_us;
    col->record(merge);
}

void
SingleSessionBackend::recordServedLocked(Clock::time_point start,
                                         Clock::time_point done)
{
    latenciesUs_.record(
        std::chrono::duration<double, std::micro>(done - start).count());
    if (!anyServed_ || start < firstSubmit_)
        firstSubmit_ = start;
    if (!anyServed_ || done > lastDone_)
        lastDone_ = done;
    anyServed_ = true;
}

ExecutionResult
SingleSessionBackend::serve(const std::vector<rt::BufferPtr> &args,
                            const support::SpanContext *ctx)
{
    std::lock_guard<std::mutex> lock(mutex_);
    support::SpanContext local;
    bool own_root = false;
    if (!ctx && trace_) {
        local.collector = trace_;
        local.traceId = traceId_;
        local.queryId = trace_->newQueryId();
        local.parentSpanId = trace_->newSpanId(); // becomes the root id
        ctx = &local;
        own_root = true;
    }
    support::TraceCollector *col =
        ctx && ctx->collector ? ctx->collector : nullptr;

    Clock::time_point start = Clock::now();
    ExecutionResult result = session_.runQuery(args);
    double e1 = col ? col->nowUs() : 0.0;
    Clock::time_point done = Clock::now();
    recordServedLocked(start, done);
    if (col) {
        double t0 = col->toUs(start);
        double m1 = col->toUs(done);
        recordQuerySpans(*ctx, result.perf, t0, e1, m1, 0);
        if (own_root) {
            support::TraceEvent root;
            root.name = "query";
            root.traceId = ctx->traceId;
            root.queryId = ctx->queryId;
            root.spanId = ctx->parentSpanId;
            root.startUs = t0;
            root.durUs = m1 - t0;
            col->record(root);
        }
    }
    return result;
}

FusedBatchResult
SingleSessionBackend::serveFusedChunk(
    const std::vector<std::vector<rt::BufferPtr>> &queries,
    std::size_t begin, std::size_t end,
    const std::vector<support::SpanContext> *ctxs)
{
    C4CAM_CHECK(begin < end && end <= queries.size(),
                "fused chunk [" << begin << ", " << end
                << ") out of range for " << queries.size() << " queries");
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = end - begin;

    std::vector<support::SpanContext> local_ctxs;
    bool own_roots = false;
    if (!ctxs && trace_) {
        local_ctxs.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            local_ctxs.push_back(support::SpanContext{
                trace_, traceId_, trace_->newQueryId(),
                trace_->newSpanId()});
        ctxs = &local_ctxs;
        own_roots = true;
    }
    support::TraceCollector *col =
        ctxs && !ctxs->empty() ? (*ctxs)[0].collector : nullptr;

    std::vector<std::vector<rt::BufferPtr>> chunk(
        queries.begin() + static_cast<std::ptrdiff_t>(begin),
        queries.begin() + static_cast<std::ptrdiff_t>(end));

    // NOTE: unlike the replica pool, a fused chunk that fails
    // mid-window leaves the successfully-served prefix recorded in
    // the session aggregate -- ExecutionSession accumulates eagerly
    // per query (those queries really did run with valid windows).
    Clock::time_point start = Clock::now();
    FusedBatchResult batch = session_.runFusedBatch(chunk);
    double e1 = col ? col->nowUs() : 0.0;
    Clock::time_point done = Clock::now();

    for (std::size_t i = 0; i < n; ++i)
        recordServedLocked(start, done);
    if (col) {
        double t0 = col->toUs(start);
        double m1 = col->toUs(done);
        for (std::size_t i = 0; i < n; ++i) {
            recordQuerySpans((*ctxs)[i], batch.results[i].perf, t0, e1, m1,
                             static_cast<std::int64_t>(n));
            if (own_roots) {
                support::TraceEvent root;
                root.name = "query";
                root.traceId = (*ctxs)[i].traceId;
                root.queryId = (*ctxs)[i].queryId;
                root.spanId = (*ctxs)[i].parentSpanId;
                root.startUs = t0;
                root.durUs = m1 - t0;
                root.fusedK = static_cast<std::int64_t>(n);
                col->record(root);
            }
        }
    }
    return batch;
}

std::int64_t
SingleSessionBackend::queriesServed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return session_.queriesServed();
}

ServingStats
SingleSessionBackend::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ServingStats stats;
    stats.queriesServed = session_.queriesServed();
    stats.aggregate = session_.aggregateReport();
    if (anyServed_) {
        stats.wallSeconds =
            std::chrono::duration<double>(lastDone_ - firstSubmit_)
                .count();
        if (stats.wallSeconds > 0.0)
            stats.qps = static_cast<double>(stats.queriesServed) /
                        stats.wallSeconds;
    }
    std::vector<double> sorted = latenciesUs_.sorted();
    stats.p50LatencyUs = support::percentile(sorted, 50.0);
    stats.p95LatencyUs = support::percentile(sorted, 95.0);
    stats.planCache = PlanCache::instance().stats();
    return stats;
}

} // namespace c4cam::core
