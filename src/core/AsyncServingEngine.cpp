#include "core/AsyncServingEngine.h"

#include <algorithm>
#include <utility>

#include "support/Error.h"
#include "support/Stats.h"

namespace c4cam::core {

namespace {

std::exception_ptr
admissionError(const char *what)
{
    return std::make_exception_ptr(AdmissionError(what));
}

} // namespace

AsyncServingEngine::AsyncServingEngine(std::unique_ptr<QueryBackend> backend,
                                       AsyncServingOptions options)
    : backend_(std::move(backend)), options_(options),
      queue_(options.queueCapacity == 0 ? 1 : options.queueCapacity,
             options.policy)
{
    C4CAM_CHECK(backend_, "AsyncServingEngine needs a QueryBackend");
    options_.queueCapacity = queue_.capacity();
    if (options_.trace) {
        // One trace id spans the whole stack: the async layer's
        // admit/wait/dispatch spans and the wrapped backend's
        // execute/merge spans group under it.
        traceId_ = options_.trace->newTraceId();
        backend_->enableTracing(options_.trace, traceId_);
    }
    options_.fuseMaxK = std::max(options_.fuseMaxK, 1);
    options_.fuseMinDepth = std::max<std::size_t>(options_.fuseMinDepth, 1);
    int dispatchers = options_.dispatchers > 0 ? options_.dispatchers
                                               : backend_->concurrency();
    options_.dispatchers = dispatchers;
    dispatchers_.reserve(static_cast<std::size_t>(dispatchers));
    for (int i = 0; i < dispatchers; ++i)
        dispatchers_.emplace_back([this] { dispatchLoop(); });
}

AsyncServingEngine::~AsyncServingEngine()
{
    shutdown();
}

void
AsyncServingEngine::shutdown()
{
    shutdown_.store(true);
    // One caller closes and joins; concurrent callers block here until
    // the teardown finished, so shutdown() is idempotent and safe to
    // race (including destructor vs explicit call).
    std::lock_guard<std::mutex> lock(shutdownMutex_);
    queue_.close();
    for (std::thread &t : dispatchers_)
        if (t.joinable())
            t.join();
}

bool
AsyncServingEngine::shuttingDown() const
{
    return shutdown_.load();
}

AsyncServingEngine::Admission
AsyncServingEngine::enqueue(Pending pending)
{
    submitted_.fetch_add(1);
    support::TraceCollector *col = options_.trace;
    if (col) {
        if (pending.admitStart == Clock::time_point{})
            pending.admitStart = Clock::now();
        pending.queryId = col->newQueryId();
        pending.rootSpan = col->newSpanId();
    }
    pending.enqueued = Clock::now();
    // Copies for the admit span: the push may move pending away (and
    // under the Block policy the push-wait is enqueue-wait time, so
    // the admit span closes at the pre-push `enqueued` stamp).
    const std::uint64_t query_id = pending.queryId;
    const std::uint64_t root_span = pending.rootSpan;
    const Clock::time_point admit_start = pending.admitStart;
    const Clock::time_point admit_end = pending.enqueued;
    auto result = queue_.push(std::move(pending));
    switch (result.status) {
    case support::BoundedQueue<Pending>::PushStatus::Ok:
        accepted_.fetch_add(1);
        if (col) {
            support::TraceEvent admit;
            admit.name = "admit";
            admit.traceId = traceId_;
            admit.queryId = query_id;
            admit.spanId = col->newSpanId();
            admit.parentSpanId = root_span;
            admit.startUs = col->toUs(admit_start);
            admit.durUs = col->toUs(admit_end) - admit.startUs;
            col->record(admit);
        }
        if (result.displaced) {
            // DropOldest evicted the stalest queued query to admit
            // this one; its submitter still gets a completion.
            dropped_.fetch_add(1);
            deliverError(*result.displaced,
                         admissionError("query dropped: drop-oldest "
                                        "overflow displaced it from the "
                                        "submission queue"));
        }
        return Admission::Accepted;
    case support::BoundedQueue<Pending>::PushStatus::Rejected:
    case support::BoundedQueue<Pending>::PushStatus::Closed: {
        // Never entered the queue: count as rejected (not completed),
        // and resolve a promise-flavored submission's future with the
        // admission error. Callback-flavored submissions signal the
        // rejection through trySubmit's return value instead -- the
        // callback must not fire for work that was never accepted.
        rejected_.fetch_add(1);
        if (result.returned && !result.returned->hasCallback)
            result.returned->promise.set_exception(admissionError(
                result.status ==
                        support::BoundedQueue<Pending>::PushStatus::Closed
                    ? "query rejected: async serving engine is "
                      "shutting down"
                    : "query rejected: submission queue is full "
                      "(reject policy)"));
        notifyProgress();
        return Admission::Rejected;
    }
    }
    return Admission::Rejected; // unreachable
}

std::future<ExecutionResult>
AsyncServingEngine::submit(std::vector<rt::BufferPtr> args,
                           std::int64_t deadline_us)
{
    // The admit span opens at submit entry: validation is admission
    // work and belongs to it.
    Clock::time_point admit_start = Clock::now();
    // Fail malformed submissions on the caller's stack, before they
    // consume a queue slot.
    backend_->validateQuery(args);
    Pending pending;
    pending.admitStart = admit_start;
    pending.args = std::move(args);
    pending.deadlineUs =
        deadline_us != 0 ? deadline_us : options_.deadlineUs;
    std::future<ExecutionResult> future = pending.promise.get_future();
    enqueue(std::move(pending));
    return future;
}

bool
AsyncServingEngine::trySubmit(std::vector<rt::BufferPtr> args,
                              Completion callback,
                              std::int64_t deadline_us)
{
    Clock::time_point admit_start = Clock::now();
    C4CAM_CHECK(callback, "trySubmit needs a completion callback");
    backend_->validateQuery(args);
    Pending pending;
    pending.admitStart = admit_start;
    pending.args = std::move(args);
    pending.deadlineUs =
        deadline_us != 0 ? deadline_us : options_.deadlineUs;
    pending.callback = std::move(callback);
    pending.hasCallback = true;
    if (enqueue(std::move(pending)) == Admission::Rejected)
        return false;
    return true;
}

std::vector<std::future<ExecutionResult>>
AsyncServingEngine::submitBatch(
    const std::vector<std::vector<rt::BufferPtr>> &queries)
{
    std::vector<std::future<ExecutionResult>> futures;
    futures.reserve(queries.size());
    for (const auto &args : queries)
        futures.push_back(submit(args));
    return futures;
}

void
AsyncServingEngine::submitBatchStreaming(
    const std::vector<std::vector<rt::BufferPtr>> &queries,
    std::function<void(std::size_t, ExecutionResult, std::exception_ptr)>
        on_result)
{
    C4CAM_CHECK(on_result, "submitBatchStreaming needs a result callback");
    for (std::size_t i = 0; i < queries.size(); ++i) {
        // Every index gets exactly one completion -- admission
        // failures AND validation failures included. A streaming
        // consumer must never have to guess which entries went
        // missing, so a malformed query mid-list is reported through
        // its own slot instead of aborting the remaining submissions.
        bool accepted = false;
        std::exception_ptr failure;
        try {
            accepted = trySubmit(
                queries[i], [on_result, i](ExecutionResult result,
                                           std::exception_ptr err) {
                    on_result(i, std::move(result), err);
                });
        } catch (const CompilerError &) {
            failure = std::current_exception();
        }
        if (failure)
            on_result(i, ExecutionResult{}, failure);
        else if (!accepted)
            on_result(i, ExecutionResult{},
                      admissionError("query rejected at submission"));
    }
}

void
AsyncServingEngine::recordCompletionSpans(const Pending &pending,
                                          Clock::time_point dispatch_done)
{
    // Recorded after the fulfillment but BEFORE the completed_ bump:
    // once drain() returns, every delivered query's spans are already
    // in the collector.
    support::TraceCollector *col = options_.trace;
    if (!col || pending.rootSpan == 0)
        return;
    Clock::time_point now = Clock::now();
    double now_us = col->toUs(now);
    if (dispatch_done != Clock::time_point{}) {
        support::TraceEvent del;
        del.name = "deliver";
        del.traceId = traceId_;
        del.queryId = pending.queryId;
        del.spanId = col->newSpanId();
        del.parentSpanId = pending.rootSpan;
        del.startUs = col->toUs(dispatch_done);
        del.durUs = now_us - del.startUs;
        col->record(del);
    }
    support::TraceEvent root;
    root.name = "query";
    root.traceId = traceId_;
    root.queryId = pending.queryId;
    root.spanId = pending.rootSpan;
    root.startUs = col->toUs(pending.admitStart);
    root.durUs = now_us - root.startUs;
    col->record(root);
}

void
AsyncServingEngine::deliver(Pending &pending, ExecutionResult result,
                            Clock::time_point dispatch_done)
{
    // Fulfill BEFORE counting: completed_ is what drain() waits on,
    // and once it covers every ticket the corresponding futures and
    // callbacks must already have fired -- counting first would let
    // drain() return while a future is still being set.
    if (pending.hasCallback) {
        try {
            pending.callback(std::move(result), nullptr);
        } catch (...) {
            // A throwing completion callback is a caller bug; eating
            // the exception beats tearing down the dispatcher.
        }
    } else {
        pending.promise.set_value(std::move(result));
    }
    recordCompletionSpans(pending, dispatch_done);
    completed_.fetch_add(1);
    notifyProgress();
}

void
AsyncServingEngine::deliverError(Pending &pending, std::exception_ptr error,
                                 Clock::time_point dispatch_done)
{
    if (pending.hasCallback) {
        try {
            pending.callback(ExecutionResult{}, error);
        } catch (...) {
        }
    } else {
        pending.promise.set_exception(error);
    }
    recordCompletionSpans(pending, dispatch_done);
    failed_.fetch_add(1);
    completed_.fetch_add(1);
    notifyProgress();
}

void
AsyncServingEngine::notifyProgress()
{
    // The empty critical section is load-bearing: it orders this
    // notification after any drain() that already evaluated its
    // predicate and is about to sleep, closing the lost-wakeup window
    // between a waiter's atomic reads and its wait() call. Keep the
    // lock/notify pairing together -- dropping the "pointless" lock
    // reintroduces the race.
    {
        std::lock_guard<std::mutex> lock(stateMutex_);
    }
    progress_.notify_all();
}

void
AsyncServingEngine::recordLatency(double wait_us, double exec_us)
{
    std::lock_guard<std::mutex> lock(latencyMutex_);
    enqueueWaitsUs_.record(wait_us);
    executeUs_.record(exec_us);
}

void
AsyncServingEngine::dispatchLoop()
{
    support::TraceCollector *col = options_.trace;
    // Dispatchers are the hot path: spans batch through a per-thread
    // recorder and hit the collector mutex once per batch. (With
    // tracing off the recorder is a null-check no-op.)
    support::SpanRecorder recorder(col);
    std::vector<support::SpanContext> ctxs;

    std::vector<Pending> group;
    for (;;) {
        group.clear();
        std::size_t n = queue_.popGroup(
            group, static_cast<std::size_t>(options_.fuseMaxK),
            options_.fuseMinDepth);
        if (n == 0)
            return; // closed and drained
        Clock::time_point popped = Clock::now();

        // Deadline shedding, decided the moment the group comes off
        // the queue: a query whose enqueue wait already blew its
        // deadline is delivered a typed DeadlineExceeded instead of
        // burning device time. The check sits BEFORE dispatch (never
        // mid-serve), so a query that starts executing always runs to
        // completion.
        {
            std::size_t kept = 0;
            for (std::size_t i = 0; i < n; ++i) {
                Pending &p = group[i];
                if (p.deadlineUs > 0 &&
                    std::chrono::duration<double, std::micro>(
                        popped - p.enqueued)
                            .count() >
                        static_cast<double>(p.deadlineUs)) {
                    deadlineSheds_.fetch_add(1);
                    deliverError(
                        p,
                        std::make_exception_ptr(DeadlineExceeded(
                            "query shed: enqueue wait exceeded its "
                            "deadline of " +
                            std::to_string(p.deadlineUs) + " us")),
                        popped);
                } else {
                    if (kept != i)
                        group[kept] = std::move(p);
                    ++kept;
                }
            }
            group.resize(kept);
            n = kept;
        }
        if (n == 0)
            continue; // the whole group expired in the queue

        if (col) {
            // One dispatch span per query (every fused member
            // experienced the whole window); the engine's execute
            // span parents under it via the per-query context.
            ctxs.clear();
            ctxs.reserve(n);
            for (const Pending &p : group)
                ctxs.push_back(support::SpanContext{
                    col, traceId_, p.queryId, col->newSpanId()});
            support::TraceEvent decision;
            decision.name = "fuse-decision";
            decision.traceId = traceId_;
            decision.queryId = group[0].queryId;
            decision.spanId = col->newSpanId();
            decision.startUs = col->toUs(popped);
            decision.durUs = 0.0;
            decision.fusedK =
                n >= 2 ? static_cast<std::int64_t>(n) : 0;
            recorder.record(decision);
        }

        // Execute first, collect the per-query outcomes, THEN record
        // latency and deliver. Delivery must come last: the moment a
        // completion fires, drain() may observe the engine idle and
        // stats() must already contain this group's samples.
        std::vector<ExecutionResult> results(n);
        std::vector<std::exception_ptr> errors(n);
        bool fused_ok = false;
        if (n >= 2) {
            std::vector<std::vector<rt::BufferPtr>> qargs;
            qargs.reserve(n);
            for (const Pending &p : group)
                qargs.push_back(p.args);
            // Args were validated at admission; dispatch through the
            // backend's non-revalidating primitives.
            try {
                FusedBatchResult fused = backend_->serveFusedChunk(
                    qargs, 0, qargs.size(), col ? &ctxs : nullptr);
                for (std::size_t i = 0; i < n; ++i)
                    results[i] = std::move(fused.results[i]);
                fusedWindows_.fetch_add(1);
                fusedQueries_.fetch_add(static_cast<std::int64_t>(n));
                fused_ok = true;
            } catch (...) {
                // The fused window aborted (one query poisoned it)
                // and recorded nothing in the engine stats. Re-serve
                // each query alone so its window-mates still succeed;
                // only the actually-broken ones fail. The group
                // counts as single dispatches -- that is how it was
                // ultimately served.
                singleDispatches_.fetch_add(static_cast<std::int64_t>(n));
                fallbackRetries_.fetch_add(static_cast<std::int64_t>(n));
                for (std::size_t i = 0; i < n; ++i) {
                    try {
                        results[i] = backend_->serve(
                            group[i].args, col ? &ctxs[i] : nullptr);
                    } catch (...) {
                        errors[i] = std::current_exception();
                    }
                }
            }
        } else {
            singleDispatches_.fetch_add(1);
            try {
                results[0] = backend_->serve(group[0].args,
                                            col ? &ctxs[0] : nullptr);
            } catch (...) {
                errors[0] = std::current_exception();
            }
        }

        Clock::time_point done = Clock::now();
        // The execute figure is the dispatch-window wall time: for a
        // fused group every member experienced the whole window (its
        // completion waited for it), so each query records the full
        // window duration, mirroring what a caller would measure.
        double exec_us =
            std::chrono::duration<double, std::micro>(done - popped)
                .count();
        for (const Pending &p : group) {
            double wait_us = std::chrono::duration<double, std::micro>(
                                 popped - p.enqueued)
                                 .count();
            recordLatency(wait_us, exec_us);
        }

        if (col) {
            double popped_us = col->toUs(popped);
            double done_us = col->toUs(done);
            for (std::size_t i = 0; i < n; ++i) {
                const Pending &p = group[i];
                support::TraceEvent wait;
                wait.name = "enqueue-wait";
                wait.traceId = traceId_;
                wait.queryId = p.queryId;
                wait.spanId = col->newSpanId();
                wait.parentSpanId = p.rootSpan;
                wait.startUs = col->toUs(p.enqueued);
                wait.durUs = popped_us - wait.startUs;
                recorder.record(wait);

                support::TraceEvent dispatch;
                dispatch.name = "dispatch";
                dispatch.traceId = traceId_;
                dispatch.queryId = p.queryId;
                dispatch.spanId = ctxs[i].parentSpanId;
                dispatch.parentSpanId = p.rootSpan;
                dispatch.startUs = popped_us;
                dispatch.durUs = done_us - popped_us;
                dispatch.fusedK =
                    fused_ok ? static_cast<std::int64_t>(n) : 0;
                recorder.record(dispatch);
            }
            // Flush before delivering: once a completion fires (and
            // certainly once drain() returns) this group's spans must
            // be visible in the collector.
            recorder.flush();
        }

        for (std::size_t i = 0; i < n; ++i) {
            if (errors[i])
                deliverError(group[i], errors[i], done);
            else
                deliver(group[i], std::move(results[i]), done);
        }
    }
}

void
AsyncServingEngine::drain()
{
    std::unique_lock<std::mutex> lock(stateMutex_);
    progress_.wait(lock, [this] {
        // Everything ticketed has been resolved one way or another
        // (completed, dropped via displacement -- already counted in
        // completed_ -- or rejected at admission) and nothing is
        // queued or mid-dispatch.
        return queue_.size() == 0 &&
               completed_.load() + rejected_.load() >= submitted_.load();
    });
}

AsyncServingStats
AsyncServingEngine::stats() const
{
    AsyncServingStats stats;
    stats.serving = backend_->stats();
    // Read outcome counters BEFORE the ticket counters: every outcome
    // (completion, rejection, drop) is preceded by its submission
    // ticket, so sampling outcomes first and tickets last guarantees
    // the conservation invariant completed + rejected <= submitted in
    // every snapshot, even one torn across a running storm. The
    // reverse order can observe a completion whose ticket was counted
    // after submitted_ was read.
    stats.failed = failed_.load();
    stats.dropped = dropped_.load();
    stats.completed = completed_.load();
    stats.rejected = rejected_.load();
    stats.fusedWindows = fusedWindows_.load();
    stats.fusedQueries = fusedQueries_.load();
    stats.singleDispatches = singleDispatches_.load();
    stats.deadlineSheds = deadlineSheds_.load();
    stats.fallbackRetries = fallbackRetries_.load();
    // The backend never sees a shed query; mirror the count into the
    // serving view so one ServingStats snapshot carries the full
    // fault-tolerance story (retries/quarantines come from below).
    stats.serving.deadlineSheds = stats.deadlineSheds;
    stats.accepted = accepted_.load();
    stats.submitted = submitted_.load();
    stats.queueDepth = queue_.size();
    stats.queueCapacity = queue_.capacity();
    // accepted_ is bumped by the producer AFTER the push, so a
    // dispatcher can race a whole serve in between and completed_
    // would transiently exceed it. Every completed query was by
    // definition accepted, so clamping keeps the documented
    // accepted >= completed invariant in every snapshot (and stays
    // monotone: both inputs only grow).
    stats.accepted = std::max(stats.accepted, stats.completed);

    std::vector<double> waits;
    std::vector<double> execs;
    {
        std::lock_guard<std::mutex> lock(latencyMutex_);
        waits = enqueueWaitsUs_.sorted();
        execs = executeUs_.sorted();
    }
    stats.p50EnqueueWaitUs = support::percentile(waits, 50.0);
    stats.p95EnqueueWaitUs = support::percentile(waits, 95.0);
    stats.p50ExecuteUs = support::percentile(execs, 50.0);
    stats.p95ExecuteUs = support::percentile(execs, 95.0);
    return stats;
}

} // namespace c4cam::core
