#ifndef C4CAM_CORE_RETRYPOLICY_H
#define C4CAM_CORE_RETRYPOLICY_H

/**
 * @file
 * Retry policy for transient device faults in the serving tier.
 *
 * Only sim::TransientFault is retryable: the device survived, the
 * query window was rolled back at the fault site, and a re-serve (on
 * the same or another replica) is bit-identical to a fault-free run.
 * Permanent failures (c4cam::ExecutionError, including
 * sim::PermanentFault) are never retried -- retrying dead hardware
 * burns the backoff budget without any chance of success; the sharded
 * tier quarantines the shard instead.
 */

#include <cstdint>

namespace c4cam::core {

/** Bounded-retry configuration for ServingEngine / ShardedEngine. */
struct RetryPolicy
{
    /**
     * Total serve attempts per query (first try included). 1 =
     * retries disabled (the pre-fault-tolerance behaviour).
     */
    int maxAttempts = 1;

    /** Base backoff before the first retry; 0 = retry immediately. */
    std::int64_t backoffUs = 0;

    /** Cap on the exponentially growing backoff delay. */
    std::int64_t maxBackoffUs = 10'000;

    /** Seed for the deterministic backoff jitter (support/Backoff.h). */
    std::uint64_t jitterSeed = 0xBACC0FFull;

    bool
    enabled() const
    {
        return maxAttempts > 1;
    }
};

} // namespace c4cam::core

#endif // C4CAM_CORE_RETRYPOLICY_H
