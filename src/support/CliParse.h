#ifndef C4CAM_SUPPORT_CLIPARSE_H
#define C4CAM_SUPPORT_CLIPARSE_H

/**
 * @file
 * Shared command-line number/flag parsing for the c4cam tools.
 *
 * Every tool (c4cam-run, c4cam-trace-check, the benches) used to carry
 * its own strtoll wrapper with subtly different overflow and
 * trailing-garbage handling; the CLI regression suite only caught the
 * divergence after the fact ("--seed banana" once threw out of
 * std::stoull before reaching the usage path). These helpers are the
 * one implementation: whole-string base-10 parse, explicit inclusive
 * bounds, no exceptions -- a malformed value is a `false`/`Bad`
 * return, so the tools can print usage and exit 2 deterministically.
 */

#include <limits>

namespace c4cam::support {

/**
 * Parse the whole of @p text as a base-10 integer into @p out.
 * @return false (leaving @p out untouched) when @p text is null,
 * empty, carries trailing garbage, overflows long long, or falls
 * outside the inclusive [@p min_value, @p max_value] range.
 */
bool parseInt(const char *text, long long &out, long long min_value = 0,
              long long max_value =
                  std::numeric_limits<long long>::max());

/** Outcome of matching one "--flag VALUE" pair against argv[i]. */
enum class FlagParse
{
    NoMatch, ///< argv[i] is not @p name; nothing was consumed
    Ok,      ///< value parsed into @p out; @p i advanced past it
    Bad      ///< @p name matched but its value is missing or malformed
};

/**
 * Match "--name N" at argv[@p i]: when argv[i] equals @p name, consume
 * the following argument (advancing @p i) and parse it with
 * parseInt()'s rules into @p out. A missing or malformed value returns
 * Bad with @p i pointing at the offending argument, so the caller's
 * usage diagnostic can name it.
 */
FlagParse parseIntFlag(int argc, char **argv, int &i, const char *name,
                       long long &out, long long min_value = 0,
                       long long max_value =
                           std::numeric_limits<long long>::max());

/**
 * Parse the whole of @p text as a floating-point number into @p out.
 * Same contract as parseInt(): false (leaving @p out untouched) when
 * @p text is null, empty, carries trailing garbage, is non-finite
 * (inf/nan are rejected -- no CLI knob wants them), or falls outside
 * the inclusive [@p min_value, @p max_value] range.
 */
bool parseDouble(const char *text, double &out, double min_value = 0.0,
                 double max_value =
                     std::numeric_limits<double>::max());

/** parseIntFlag's counterpart for "--name X.Y" floating-point flags. */
FlagParse parseDoubleFlag(int argc, char **argv, int &i, const char *name,
                          double &out, double min_value = 0.0,
                          double max_value =
                              std::numeric_limits<double>::max());

} // namespace c4cam::support

#endif // C4CAM_SUPPORT_CLIPARSE_H
