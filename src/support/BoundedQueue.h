#ifndef C4CAM_SUPPORT_BOUNDEDQUEUE_H
#define C4CAM_SUPPORT_BOUNDEDQUEUE_H

/**
 * @file
 * Bounded multi-producer/multi-consumer queue with overflow policies.
 *
 * The admission layer of the async serving front-end: producers push
 * queries, dispatcher threads pop them (singly or in groups for
 * fused micro-batching). The capacity bound is what turns a traffic
 * spike into backpressure instead of unbounded memory growth; the
 * policy decides what backpressure looks like:
 *
 *  - Block:      push() waits until a slot frees up (lossless,
 *                producers slow down to the service rate);
 *  - Reject:     push() fails immediately when full (load shedding at
 *                admission, callers see the rejection synchronously);
 *  - DropOldest: push() displaces the oldest queued item and hands it
 *                back to the caller so its completion can be failed
 *                (freshness wins; a stale queued query is worth less
 *                than the newly arriving one).
 *
 * Plain mutex + two condition variables: the queues here hold whole
 * serving requests whose execution costs microseconds to
 * milliseconds, so lock contention is noise and the simplicity is
 * worth more than a lock-free ring. Type T needs to be movable only.
 */

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

namespace c4cam::support {

/** What push() does when the queue is at capacity. */
enum class OverflowPolicy { Block, Reject, DropOldest };

inline const char *
toString(OverflowPolicy policy)
{
    switch (policy) {
    case OverflowPolicy::Block:
        return "block";
    case OverflowPolicy::Reject:
        return "reject";
    case OverflowPolicy::DropOldest:
        return "drop-oldest";
    }
    return "unknown";
}

/** Parse a CLI spelling ("block" / "reject" / "drop-oldest"). */
inline std::optional<OverflowPolicy>
parseOverflowPolicy(std::string_view text)
{
    if (text == "block")
        return OverflowPolicy::Block;
    if (text == "reject")
        return OverflowPolicy::Reject;
    if (text == "drop-oldest")
        return OverflowPolicy::DropOldest;
    return std::nullopt;
}

/**
 * Fixed-capacity FIFO shared by N producers and M consumers.
 *
 * close() makes every subsequent push() fail with Closed and lets
 * consumers drain what is already queued; pop()/popGroup() return
 * false/0 only when the queue is both closed and empty, so a graceful
 * shutdown never loses accepted work.
 */
template <typename T>
class BoundedQueue
{
  public:
    enum class PushStatus { Ok, Rejected, Closed };

    /** Outcome of one push: the status, plus the item the caller must
     *  fail -- under DropOldest a successful push can displace the
     *  oldest queued item (returned in @c displaced), and a
     *  Rejected/Closed push hands the caller's own item back in
     *  @c returned so its completion can be resolved instead of
     *  silently destroyed. */
    struct PushResult
    {
        PushStatus status = PushStatus::Ok;
        std::optional<T> displaced;
        std::optional<T> returned;

        bool ok() const { return status == PushStatus::Ok; }
    };

    /** @p capacity must be >= 1 (enforced by clamping, not UB). */
    explicit BoundedQueue(std::size_t capacity,
                          OverflowPolicy policy = OverflowPolicy::Block)
        : capacity_(capacity == 0 ? 1 : capacity), policy_(policy)
    {
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    std::size_t capacity() const { return capacity_; }
    OverflowPolicy policy() const { return policy_; }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    /**
     * Enqueue @p item according to the overflow policy. Under Block
     * this waits for space (or for close()); the other policies never
     * block. A Rejected/Closed result leaves @p item consumed -- the
     * caller already moved it in and is expected to fail the
     * associated completion, not retry with the same object.
     */
    PushResult
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        PushResult result;
        if (closed_) {
            result.status = PushStatus::Closed;
            result.returned = std::move(item);
            return result;
        }
        if (items_.size() >= capacity_) {
            switch (policy_) {
            case OverflowPolicy::Block:
                notFull_.wait(lock, [this] {
                    return closed_ || items_.size() < capacity_;
                });
                if (closed_) {
                    result.status = PushStatus::Closed;
                    result.returned = std::move(item);
                    return result;
                }
                break;
            case OverflowPolicy::Reject:
                result.status = PushStatus::Rejected;
                result.returned = std::move(item);
                return result;
            case OverflowPolicy::DropOldest:
                result.displaced = std::move(items_.front());
                items_.pop_front();
                break;
            }
        }
        items_.push_back(std::move(item));
        lock.unlock();
        notEmpty_.notify_one();
        return result;
    }

    /**
     * Dequeue one item, waiting while the queue is empty and open.
     * @return false only when closed and fully drained.
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notEmpty_.wait(lock, [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        notFull_.notify_one();
        return true;
    }

    /**
     * Dequeue a micro-batch: waits like pop() for the first item,
     * then -- only when at least @p fuse_threshold items are queued
     * -- greedily takes up to @p max_items of what is available right
     * now (never waiting for more). Below the threshold exactly one
     * item is taken, so a shallow queue degenerates to single-query
     * dispatch and a deep queue yields fused windows. The depth test
     * and the take happen under one lock, so concurrent consumers
     * never split an observed-deep queue into singles.
     *
     * Appends to @p out. @return number of items taken; 0 only when
     * closed and drained.
     */
    std::size_t
    popGroup(std::vector<T> &out, std::size_t max_items,
             std::size_t fuse_threshold = 2)
    {
        if (max_items == 0)
            max_items = 1;
        std::unique_lock<std::mutex> lock(mutex_);
        notEmpty_.wait(lock, [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return 0;
        std::size_t take = 1;
        if (items_.size() >= fuse_threshold)
            take = std::min(max_items, items_.size());
        for (std::size_t i = 0; i < take; ++i) {
            out.push_back(std::move(items_.front()));
            items_.pop_front();
        }
        lock.unlock();
        // Every freed slot can admit one blocked producer.
        for (std::size_t i = 0; i < take; ++i)
            notFull_.notify_one();
        return take;
    }

    /**
     * Stop admissions: subsequent push() calls fail with Closed,
     * blocked producers wake up with Closed, and consumers drain the
     * remaining items before pop()/popGroup() report exhaustion.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

  private:
    const std::size_t capacity_;
    const OverflowPolicy policy_;

    mutable std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace c4cam::support

#endif // C4CAM_SUPPORT_BOUNDEDQUEUE_H
