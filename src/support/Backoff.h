#ifndef C4CAM_SUPPORT_BACKOFF_H
#define C4CAM_SUPPORT_BACKOFF_H

/**
 * @file
 * Deterministic bounded exponential backoff with jitter.
 *
 * The serving tier retries transient device faults (sim::TransientFault)
 * with a bounded delay between attempts. The delay is exponential in the
 * attempt number, capped, and jittered -- but the jitter is a pure
 * function of (seed, attempt), not a global RNG, so chaos runs stay
 * replayable from a single seed like everything else in the fault
 * model.
 */

#include <cstdint>

namespace c4cam::support {

/**
 * Backoff delay in microseconds before retry attempt @p attempt
 * (1-based: attempt 1 is the first *retry*). Exponential doubling of
 * @p base_us, capped at @p max_us, with deterministic multiplicative
 * jitter in [0.5, 1.0) derived from (@p seed, @p attempt). base_us <= 0
 * means no delay.
 */
inline std::int64_t
backoffDelayUs(std::int64_t base_us, int attempt, std::int64_t max_us,
               std::uint64_t seed)
{
    if (base_us <= 0 || attempt <= 0)
        return 0;
    // Saturating exponential: base * 2^(attempt-1), capped.
    std::int64_t delay = base_us;
    for (int i = 1; i < attempt && delay < max_us; ++i)
        delay = delay > max_us / 2 ? max_us : delay * 2;
    if (max_us > 0 && delay > max_us)
        delay = max_us;
    // splitmix64 over (seed, attempt) -> jitter factor in [0.5, 1.0):
    // decorrelates replicas retrying the same instant (thundering
    // herd) while keeping every delay reproducible.
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * std::uint64_t(attempt);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z = z ^ (z >> 31);
    double jitter = 0.5 + 0.5 * (double(z >> 11) * 0x1.0p-53);
    std::int64_t jittered = std::int64_t(double(delay) * jitter);
    return jittered > 0 ? jittered : 1;
}

} // namespace c4cam::support

#endif // C4CAM_SUPPORT_BACKOFF_H
