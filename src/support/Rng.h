#ifndef C4CAM_SUPPORT_RNG_H
#define C4CAM_SUPPORT_RNG_H

/**
 * @file
 * Deterministic random number generator for dataset synthesis.
 *
 * A fixed splitmix64/xoshiro-style generator makes dataset generation and
 * property tests reproducible across platforms and standard libraries
 * (std::mt19937 distributions are not portable across implementations).
 */

#include <cstdint>

namespace c4cam {

/** Deterministic 64-bit RNG (splitmix64 core). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool
    nextBool(double p = 0.5)
    {
        return nextDouble() < p;
    }

    /** Approximately standard-normal draw (sum of 12 uniforms). */
    double
    nextGaussian()
    {
        double acc = 0.0;
        for (int i = 0; i < 12; ++i)
            acc += nextDouble();
        return acc - 6.0;
    }

  private:
    std::uint64_t state_;
};

} // namespace c4cam

#endif // C4CAM_SUPPORT_RNG_H
