#ifndef C4CAM_SUPPORT_JSON_H
#define C4CAM_SUPPORT_JSON_H

/**
 * @file
 * Minimal JSON value and parser used for architecture specifications.
 *
 * Supports the JSON subset needed by C4CAM configs: objects, arrays,
 * strings, numbers, booleans and null, plus `//` line comments as an
 * extension (specs are hand-written files).
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace c4cam {

/** A parsed JSON value (object/array/string/number/bool/null). */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() : kind_(Kind::Null) {}
    explicit JsonValue(bool b) : kind_(Kind::Bool), boolVal_(b) {}
    explicit JsonValue(double d) : kind_(Kind::Number), numVal_(d) {}
    explicit JsonValue(std::string s)
        : kind_(Kind::String), strVal_(std::move(s))
    {}

    static JsonValue makeArray() { JsonValue v; v.kind_ = Kind::Array; return v; }
    static JsonValue makeObject() { JsonValue v; v.kind_ = Kind::Object; return v; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Value accessors; raise CompilerError on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    std::int64_t asInt() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &asArray() const;
    const std::map<std::string, JsonValue> &asObject() const;

    /** Object member lookup; @return nullptr when absent. */
    const JsonValue *find(const std::string &key) const;

    /** Object member lookup with a fallback for scalars. */
    std::int64_t getInt(const std::string &key, std::int64_t dflt) const;
    double getNumber(const std::string &key, double dflt) const;
    bool getBool(const std::string &key, bool dflt) const;
    std::string getString(const std::string &key,
                          const std::string &dflt) const;

    /** Mutators used when building configs programmatically. */
    void append(JsonValue v);
    void set(const std::string &key, JsonValue v);

    /** Serialize back to JSON text (stable member order). */
    std::string dump(int indent = 0) const;

  private:
    void dumpImpl(std::string &out, int indent, int depth) const;

    Kind kind_;
    bool boolVal_ = false;
    double numVal_ = 0.0;
    std::string strVal_;
    std::vector<JsonValue> arr_;
    std::map<std::string, JsonValue> obj_;
};

/** Parse JSON text; raises CompilerError with line info on bad input. */
JsonValue parseJson(const std::string &text);

/** Parse the JSON file at @p path; raises CompilerError if unreadable. */
JsonValue parseJsonFile(const std::string &path);

} // namespace c4cam

#endif // C4CAM_SUPPORT_JSON_H
