#include "support/CliParse.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace c4cam::support {

bool
parseInt(const char *text, long long &out, long long min_value,
         long long max_value)
{
    if (!text || *text == '\0')
        return false;
    errno = 0;
    char *end = nullptr;
    long long value = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE)
        return false;
    if (value < min_value || value > max_value)
        return false;
    out = value;
    return true;
}

FlagParse
parseIntFlag(int argc, char **argv, int &i, const char *name,
             long long &out, long long min_value, long long max_value)
{
    if (std::strcmp(argv[i], name) != 0)
        return FlagParse::NoMatch;
    if (i + 1 >= argc)
        return FlagParse::Bad;
    ++i;
    return parseInt(argv[i], out, min_value, max_value) ? FlagParse::Ok
                                                        : FlagParse::Bad;
}

bool
parseDouble(const char *text, double &out, double min_value,
            double max_value)
{
    if (!text || *text == '\0')
        return false;
    errno = 0;
    char *end = nullptr;
    double value = std::strtod(text, &end);
    if (end == text || *end != '\0' || errno == ERANGE)
        return false;
    if (!std::isfinite(value))
        return false;
    if (value < min_value || value > max_value)
        return false;
    out = value;
    return true;
}

FlagParse
parseDoubleFlag(int argc, char **argv, int &i, const char *name,
                double &out, double min_value, double max_value)
{
    if (std::strcmp(argv[i], name) != 0)
        return FlagParse::NoMatch;
    if (i + 1 >= argc)
        return FlagParse::Bad;
    ++i;
    return parseDouble(argv[i], out, min_value, max_value)
               ? FlagParse::Ok
               : FlagParse::Bad;
}

} // namespace c4cam::support
