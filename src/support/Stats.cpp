#include "support/Stats.h"

#include <algorithm>
#include <cstddef>

namespace c4cam::support {

std::vector<double>
LatencyWindow::sorted() const
{
    std::vector<double> out = samples_;
    std::sort(out.begin(), out.end());
    return out;
}

double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    p = std::min(std::max(p, 0.0), 100.0);
    const std::size_t n = sorted.size();

    // Smallest 1-based rank k with k * 100 >= p * n. Start from the
    // float estimate, then correct with exact comparisons: both
    // k * 100.0 and p * n are exactly representable for integral p
    // and any sample count below 2^46, so the loop steps settle on
    // the true ceiling even when the division-based estimate is off
    // by one ulp in either direction.
    const double target = p * static_cast<double>(n);
    std::size_t k = static_cast<std::size_t>(target / 100.0);
    while (k > 1 && static_cast<double>(k - 1) * 100.0 >= target)
        --k;
    while (static_cast<double>(k) * 100.0 < target)
        ++k;
    k = std::min(std::max<std::size_t>(k, 1), n);
    return sorted[k - 1];
}

} // namespace c4cam::support
