#include "support/Json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "support/Error.h"

namespace c4cam {

bool
JsonValue::asBool() const
{
    C4CAM_CHECK(isBool(), "JSON value is not a boolean");
    return boolVal_;
}

double
JsonValue::asNumber() const
{
    C4CAM_CHECK(isNumber(), "JSON value is not a number");
    return numVal_;
}

std::int64_t
JsonValue::asInt() const
{
    double d = asNumber();
    // The range check guards the cast below: converting a double
    // outside int64's range is undefined behavior.
    C4CAM_CHECK(std::isfinite(d) && std::floor(d) == d &&
                    d >= -0x1p63 && d < 0x1p63,
                "JSON number " << d << " is not a 64-bit integer");
    return static_cast<std::int64_t>(d);
}

const std::string &
JsonValue::asString() const
{
    C4CAM_CHECK(isString(), "JSON value is not a string");
    return strVal_;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    C4CAM_CHECK(isArray(), "JSON value is not an array");
    return arr_;
}

const std::map<std::string, JsonValue> &
JsonValue::asObject() const
{
    C4CAM_CHECK(isObject(), "JSON value is not an object");
    return obj_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (!isObject())
        return nullptr;
    auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
}

std::int64_t
JsonValue::getInt(const std::string &key, std::int64_t dflt) const
{
    const JsonValue *v = find(key);
    return v ? v->asInt() : dflt;
}

double
JsonValue::getNumber(const std::string &key, double dflt) const
{
    const JsonValue *v = find(key);
    return v ? v->asNumber() : dflt;
}

bool
JsonValue::getBool(const std::string &key, bool dflt) const
{
    const JsonValue *v = find(key);
    return v ? v->asBool() : dflt;
}

std::string
JsonValue::getString(const std::string &key, const std::string &dflt) const
{
    const JsonValue *v = find(key);
    return v ? v->asString() : dflt;
}

void
JsonValue::append(JsonValue v)
{
    C4CAM_ASSERT(isArray(), "append on non-array JSON value");
    arr_.push_back(std::move(v));
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    C4CAM_ASSERT(isObject(), "set on non-object JSON value");
    obj_[key] = std::move(v);
}

namespace {

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            // Remaining control characters are invalid raw inside a
            // JSON string (RFC 8259 requires escaping everything below
            // 0x20); emit them as \u00XX so dump() output always
            // round-trips through a strict parser.
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char *hex = "0123456789abcdef";
                out += "\\u00";
                out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
                out += hex[static_cast<unsigned char>(c) & 0xF];
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

void
JsonValue::dumpImpl(std::string &out, int indent, int depth) const
{
    std::string pad(static_cast<size_t>(indent) * (depth + 1), ' ');
    std::string padEnd(static_cast<size_t>(indent) * depth, ' ');
    const char *nl = indent > 0 ? "\n" : "";
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += boolVal_ ? "true" : "false";
        break;
      case Kind::Number: {
        std::ostringstream oss;
        if (std::floor(numVal_) == numVal_ &&
            std::abs(numVal_) < 1e15) {
            oss << static_cast<std::int64_t>(numVal_);
        } else {
            // Round-trip precision: trace consumers check that
            // sibling spans tile exactly (start + dur == next start,
            // recorded from one shared clock read), which the default
            // 6-significant-digit format destroys at microsecond
            // magnitudes.
            oss << std::setprecision(
                       std::numeric_limits<double>::max_digits10)
                << numVal_;
        }
        out += oss.str();
        break;
      }
      case Kind::String:
        escapeString(out, strVal_);
        break;
      case Kind::Array: {
        out += '[';
        bool first = true;
        for (const auto &v : arr_) {
            if (!first)
                out += ',';
            out += nl;
            out += pad;
            v.dumpImpl(out, indent, depth + 1);
            first = false;
        }
        if (!arr_.empty()) {
            out += nl;
            out += padEnd;
        }
        out += ']';
        break;
      }
      case Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[k, v] : obj_) {
            if (!first)
                out += ',';
            out += nl;
            out += pad;
            escapeString(out, k);
            out += indent > 0 ? ": " : ":";
            v.dumpImpl(out, indent, depth + 1);
            first = false;
        }
        if (!obj_.empty()) {
            out += nl;
            out += padEnd;
        }
        out += '}';
        break;
      }
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpImpl(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent JSON parser with line/column tracking. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    /** Containers deeper than this are rejected instead of risking a
     *  stack overflow in the recursive descent. */
    static constexpr int kMaxNestingDepth = 256;

    JsonValue
    parse()
    {
        skipWs();
        JsonValue v = parseValue();
        skipWs();
        C4CAM_CHECK(pos_ == text_.size(),
                    "trailing characters after JSON document at line "
                    << line_);
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        C4CAM_USER_ERROR("JSON parse error at line " << line_
                         << ", column " << col_ << ": " << what);
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    char
    next()
    {
        char c = peek();
        pos_++;
        if (c == '\n') {
            line_++;
            col_ = 1;
        } else {
            col_++;
        }
        return c;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isspace(static_cast<unsigned char>(c))) {
                next();
            } else if (c == '/' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == '/') {
                while (pos_ < text_.size() && text_[pos_] != '\n')
                    next();
            } else {
                break;
            }
        }
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek() + "'");
        next();
    }

    JsonValue
    parseValue()
    {
        char c = peek();
        if (c == '{' || c == '[') {
            if (depth_ >= kMaxNestingDepth)
                fail("nesting depth exceeds limit of " +
                     std::to_string(kMaxNestingDepth));
            ++depth_;
            JsonValue v = c == '{' ? parseObject() : parseArray();
            --depth_;
            return v;
        }
        if (c == '"')
            return JsonValue(parseString());
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n') {
            parseKeyword("null");
            return JsonValue();
        }
        return parseNumber();
    }

    void
    parseKeyword(const std::string &kw)
    {
        for (char c : kw) {
            if (peek() != c)
                fail("invalid keyword, expected '" + kw + "'");
            next();
        }
    }

    JsonValue
    parseBool()
    {
        if (peek() == 't') {
            parseKeyword("true");
            return JsonValue(true);
        }
        parseKeyword("false");
        return JsonValue(false);
    }

    /** Four hex digits of a \u escape -> code unit. */
    unsigned
    parseHex4()
    {
        unsigned cu = 0;
        for (int i = 0; i < 4; ++i) {
            char h = next();
            cu <<= 4;
            if (h >= '0' && h <= '9')
                cu |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
                cu |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
                cu |= static_cast<unsigned>(h - 'A' + 10);
            else
                fail("invalid hex digit in \\u escape");
        }
        return cu;
    }

    void
    encodeUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            char c = next();
            if (c == '"')
                break;
            if (c == '\\') {
                char e = next();
                switch (e) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'u': {
                    unsigned cp = parseHex4();
                    if (cp >= 0xD800 && cp <= 0xDBFF) {
                        // High surrogate: must pair with a low one.
                        if (next() != '\\' || next() != 'u')
                            fail("unpaired UTF-16 high surrogate");
                        unsigned lo = parseHex4();
                        if (lo < 0xDC00 || lo > 0xDFFF)
                            fail("invalid UTF-16 low surrogate");
                        cp = 0x10000 + ((cp - 0xD800) << 10) +
                             (lo - 0xDC00);
                    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                        fail("unpaired UTF-16 low surrogate");
                    }
                    encodeUtf8(out, cp);
                    break;
                  }
                  default: fail("unsupported escape sequence");
                }
            } else {
                out += c;
            }
        }
        return out;
    }

    JsonValue
    parseNumber()
    {
        size_t start = pos_;
        if (peek() == '-')
            next();
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            next();
        }
        std::string tok = text_.substr(start, pos_ - start);
        // strtod instead of std::stod: a magnitude outside double's
        // range ("1e999") is syntactically valid JSON, and strtod
        // clamps it to +/-HUGE_VAL (or a denormal/0 on underflow)
        // rather than throwing std::out_of_range.
        char *end = nullptr;
        double d = std::strtod(tok.c_str(), &end);
        if (tok.empty() || end != tok.c_str() + tok.size())
            fail("invalid number '" + tok + "'");
        return JsonValue(d);
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue arr = JsonValue::makeArray();
        skipWs();
        if (peek() == ']') {
            next();
            return arr;
        }
        while (true) {
            skipWs();
            arr.append(parseValue());
            skipWs();
            char c = next();
            if (c == ']')
                break;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
        return arr;
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue obj = JsonValue::makeObject();
        skipWs();
        if (peek() == '}') {
            next();
            return obj;
        }
        while (true) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            skipWs();
            obj.set(key, parseValue());
            skipWs();
            char c = next();
            if (c == '}')
                break;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
        return obj;
    }

    const std::string &text_;
    size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
    int depth_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

JsonValue
parseJsonFile(const std::string &path)
{
    std::ifstream in(path);
    C4CAM_CHECK(in.good(), "cannot open JSON file '" << path << "'");
    std::ostringstream oss;
    oss << in.rdbuf();
    return parseJson(oss.str());
}

} // namespace c4cam
