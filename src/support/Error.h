#ifndef C4CAM_SUPPORT_ERROR_H
#define C4CAM_SUPPORT_ERROR_H

/**
 * @file
 * Error-handling primitives shared by the whole compiler.
 *
 * Two failure classes, following the gem5 fatal/panic split:
 *  - CompilerError: the *user's* fault (malformed input program, invalid
 *    architecture specification, unsupported op). Reported with a message
 *    and recoverable by the embedding application.
 *  - InternalError: a C4CAM bug (broken invariant). Raised by
 *    C4CAM_ASSERT and never expected in correct runs.
 */

#include <sstream>
#include <stdexcept>
#include <string>

namespace c4cam {

/** Error caused by invalid user input (program or configuration). */
class CompilerError : public std::runtime_error
{
  public:
    explicit CompilerError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Error caused by a violated internal invariant (a C4CAM bug). */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/**
 * Permanent execution failure: the device (or shard) backing a query
 * is gone and no amount of retrying on the same hardware can succeed.
 * The serving tier's RetryPolicy never retries these; the sharded
 * tier reacts by quarantining the failed shard instead
 * (sim::PermanentFault derives from this).
 */
class ExecutionError : public CompilerError
{
  public:
    explicit ExecutionError(const std::string &msg)
        : CompilerError(msg)
    {}
};

namespace detail {

[[noreturn]] void throwCompilerError(const std::string &msg);
[[noreturn]] void throwInternalError(const std::string &msg, const char *file,
                                     int line);

} // namespace detail

} // namespace c4cam

/** Raise a CompilerError with an ostream-style message. */
#define C4CAM_USER_ERROR(msg_expr)                                           \
    do {                                                                     \
        std::ostringstream c4cam_oss_;                                       \
        c4cam_oss_ << msg_expr;                                              \
        ::c4cam::detail::throwCompilerError(c4cam_oss_.str());               \
    } while (0)

/** Assert an internal invariant; violation is a C4CAM bug. */
#define C4CAM_ASSERT(cond, msg_expr)                                         \
    do {                                                                     \
        if (!(cond)) {                                                       \
            std::ostringstream c4cam_oss_;                                   \
            c4cam_oss_ << "assertion `" #cond "` failed: " << msg_expr;      \
            ::c4cam::detail::throwInternalError(c4cam_oss_.str(), __FILE__,  \
                                                __LINE__);                   \
        }                                                                    \
    } while (0)

/** Validate user-provided input; violation is the user's fault. */
#define C4CAM_CHECK(cond, msg_expr)                                          \
    do {                                                                     \
        if (!(cond)) {                                                       \
            C4CAM_USER_ERROR(msg_expr);                                      \
        }                                                                    \
    } while (0)

#endif // C4CAM_SUPPORT_ERROR_H
