#ifndef C4CAM_SUPPORT_THREADPOOL_H
#define C4CAM_SUPPORT_THREADPOOL_H

/**
 * @file
 * Fixed-size worker pool with a FIFO work queue.
 *
 * Used by the serving engine (one in-flight query per device replica)
 * and the DSE driver (one architecture candidate per task). Tasks are
 * type-erased thunks; submit() wraps a callable into a std::future so
 * results and exceptions propagate to the caller.
 */

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace c4cam::support {

/**
 * Worker-thread placement knobs. Everything here is best effort and
 * purely observational: naming and pinning never change what the pool
 * computes, only where the OS schedules it (shard fan-out workers pin
 * so the M per-query scatter tasks stop migrating between cores).
 */
struct ThreadPoolOptions
{
    /** Worker count; 0 means hardware_concurrency() (at least 1). */
    std::size_t threads = 0;

    /**
     * When non-empty, worker i is named "<namePrefix><i>" (truncated
     * to the platform's thread-name limit). Shows up in /proc, top -H
     * and debuggers; a no-op where the platform has no thread names.
     */
    std::string namePrefix;

    /**
     * Pin worker i to CPU (pinOffset + i) % hardware_concurrency().
     * A no-op on platforms without pthread_setaffinity_np (see
     * affinitySupported()); pinning failures are ignored -- a pool in
     * a restricted cpuset must still come up.
     */
    bool pinThreads = false;
    std::size_t pinOffset = 0;
};

/**
 * N worker threads draining one FIFO queue.
 *
 * Threads are joined in the destructor after the queue drains; tasks
 * submitted from other tasks are allowed (workers never block on their
 * own results -- waiting on a future of a task that sits behind you in
 * the queue of a 1-thread pool would deadlock, so don't do that).
 */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 means std::thread::hardware_concurrency()
     *        (at least 1).
     */
    explicit ThreadPool(std::size_t threads);

    /** Worker pool with naming/affinity placement options. */
    explicit ThreadPool(const ThreadPoolOptions &options);

    /** True when this platform can honor ThreadPoolOptions::pinThreads
     *  (pthread_setaffinity_np is available). */
    static bool affinitySupported();

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t numThreads() const { return workers_.size(); }

    /**
     * Enqueue @p fn; the future resolves with its return value (or
     * rethrows its exception).
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

  private:
    void enqueue(std::function<void()> job);
    void workerLoop();
    /** Apply @p options naming/pinning to worker @p index (best
     *  effort; failures are ignored). */
    static void placeWorker(std::thread &worker,
                            const ThreadPoolOptions &options,
                            std::size_t index);

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
};

} // namespace c4cam::support

#endif // C4CAM_SUPPORT_THREADPOOL_H
