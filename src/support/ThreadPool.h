#ifndef C4CAM_SUPPORT_THREADPOOL_H
#define C4CAM_SUPPORT_THREADPOOL_H

/**
 * @file
 * Fixed-size worker pool with a FIFO work queue.
 *
 * Used by the serving engine (one in-flight query per device replica)
 * and the DSE driver (one architecture candidate per task). Tasks are
 * type-erased thunks; submit() wraps a callable into a std::future so
 * results and exceptions propagate to the caller.
 */

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace c4cam::support {

/**
 * N worker threads draining one FIFO queue.
 *
 * Threads are joined in the destructor after the queue drains; tasks
 * submitted from other tasks are allowed (workers never block on their
 * own results -- waiting on a future of a task that sits behind you in
 * the queue of a 1-thread pool would deadlock, so don't do that).
 */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 means std::thread::hardware_concurrency()
     *        (at least 1).
     */
    explicit ThreadPool(std::size_t threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t numThreads() const { return workers_.size(); }

    /**
     * Enqueue @p fn; the future resolves with its return value (or
     * rethrows its exception).
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

  private:
    void enqueue(std::function<void()> job);
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
};

} // namespace c4cam::support

#endif // C4CAM_SUPPORT_THREADPOOL_H
