#ifndef C4CAM_SUPPORT_STRINGUTILS_H
#define C4CAM_SUPPORT_STRINGUTILS_H

/**
 * @file
 * Small string helpers shared across the compiler.
 */

#include <string>
#include <vector>

namespace c4cam {

/** Split @p s on @p sep, keeping empty fields. */
std::vector<std::string> splitString(const std::string &s, char sep);

/** Join @p parts with @p sep. */
std::string joinStrings(const std::vector<std::string> &parts,
                        const std::string &sep);

/** @return true when @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Strip leading and trailing whitespace. */
std::string trimString(const std::string &s);

} // namespace c4cam

#endif // C4CAM_SUPPORT_STRINGUTILS_H
