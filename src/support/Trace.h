#ifndef C4CAM_SUPPORT_TRACE_H
#define C4CAM_SUPPORT_TRACE_H

/**
 * @file
 * Per-query span tracing for the serving stack.
 *
 * Aggregate p50/p95 figures (support::Stats) say *that* a query was
 * slow; spans say *why*: the serving layers stamp one TraceEvent per
 * lifecycle stage (admit, enqueue-wait, dispatch, execute, merge, ...)
 * and the simulator attaches the per-window simulated breakdown to the
 * execute span, so wall-clock and simulated time live in one record.
 *
 * Pieces:
 *  - TraceEvent: one completed span (ids + wall-clock interval +
 *    optional simulated breakdown).
 *  - TraceCollector: bounded ring buffer of events shared by every
 *    layer of one serving stack; hands out trace/query/span ids and
 *    owns the wall-clock epoch. Oldest events are overwritten when the
 *    ring is full (a long-lived engine must not grow memory per query
 *    served); `dropped()` counts the overwrites.
 *  - SpanRecorder: per-thread batching front of the collector. Hot
 *    paths (dispatcher loops) record into a local vector and pay one
 *    collector mutex acquisition per batch, not per span.
 *  - SpanContext: the (collector, trace, query, parent-span) tuple
 *    threaded through the layers. A default-constructed context has a
 *    null collector; every tracing call site checks `enabled()` first
 *    and the check inlines to one predictable branch, so tracing is
 *    zero-overhead when off -- no engine option flips behavior at a
 *    distance, absence of a collector IS the off switch.
 *
 * Export: toJson() renders one document that is simultaneously a
 * Chrome `trace_event` file (a top-level "traceEvents" array of "X"
 * phase events -- extra top-level keys are permitted by that format
 * and ignored by chrome://tracing / Perfetto) and a compact spans
 * array ("spans") carrying the full id/sim payload for programmatic
 * consumers (c4cam-trace-check, bench_serving_throughput --replay).
 *
 * Threading: TraceCollector is fully thread-safe; a SpanRecorder
 * belongs to exactly one thread. Recording never throws and never
 * blocks on anything but the collector mutex.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace c4cam {
class JsonValue;
}

namespace c4cam::support {

/** One completed span: ids, wall-clock interval, optional sim data. */
struct TraceEvent
{
    /** Span name; must point at static-lifetime storage (the serving
     *  layers pass string literals -- recording must not allocate). */
    const char *name = "";

    std::uint64_t traceId = 0;      ///< one serving stack / session
    std::uint64_t queryId = 0;      ///< one query's lifecycle (0 = none)
    std::uint64_t spanId = 0;       ///< this span
    std::uint64_t parentSpanId = 0; ///< enclosing span (0 = root)

    /** Small per-thread ordinal (Chrome "tid"); 0 means "fill in at
     *  record time with the calling thread's ordinal". */
    std::uint32_t tid = 0;

    /// @name Wall-clock interval, microseconds since the collector's
    /// epoch (TraceCollector::nowUs / toUs)
    /// @{
    double startUs = 0.0;
    double durUs = 0.0;
    /// @}

    /// @name Simulated per-window breakdown (valid when hasSim; set by
    /// sim::attachWindowBreakdown on execute spans)
    /// @{
    bool hasSim = false;
    double simQueryLatencyNs = 0.0;
    double simQueryEnergyPj = 0.0;
    double simCellEnergyPj = 0.0;
    double simSenseEnergyPj = 0.0;
    double simDriveEnergyPj = 0.0;
    double simMergeEnergyPj = 0.0;
    double simSetupLatencyNs = 0.0;
    double simSetupEnergyPj = 0.0;
    std::int64_t simSearches = 0;
    /// @}

    /** Fused-dispatch width this span rode in (0 = not fused). */
    std::int64_t fusedK = 0;
};

/**
 * Bounded ring buffer of TraceEvents plus the id/epoch authority for
 * one traced serving stack. Thread-safe throughout.
 */
class TraceCollector
{
  public:
    /** @p capacity is clamped to >= 1. */
    explicit TraceCollector(std::size_t capacity = 65536);

    TraceCollector(const TraceCollector &) = delete;
    TraceCollector &operator=(const TraceCollector &) = delete;

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const;

    /** Events overwritten because the ring was full. */
    std::int64_t dropped() const;

    /// @name Id allocation (monotone from 1; 0 everywhere means "none")
    /// @{
    std::uint64_t newTraceId() { return nextTraceId_.fetch_add(1); }
    std::uint64_t newQueryId() { return nextQueryId_.fetch_add(1); }
    std::uint64_t newSpanId() { return nextSpanId_.fetch_add(1); }
    /// @}

    /** Microseconds since this collector's construction. */
    double nowUs() const { return toUs(std::chrono::steady_clock::now()); }

    /** Convert a caller-taken timestamp to epoch-relative us. All
     *  layers stamp with the same clock, so span intervals built from
     *  shared time points telescope exactly. */
    double
    toUs(std::chrono::steady_clock::time_point tp) const
    {
        return std::chrono::duration<double, std::micro>(tp - epoch_)
            .count();
    }

    /** Append one event (one mutex acquisition). */
    void record(TraceEvent ev);

    /** Append a batch and clear @p events (one mutex acquisition for
     *  the whole batch -- the SpanRecorder drain path). */
    void recordBatch(std::vector<TraceEvent> &events);

    /** Copy of the buffered events, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    /**
     * Full trace document: {"schema": "c4cam-trace-v1", "spans":
     * [...], "traceEvents": [...], "dropped": N}. Loadable directly in
     * chrome://tracing (which reads "traceEvents" and ignores the
     * rest) and by compact-span consumers (which read "spans").
     */
    JsonValue toJson() const;

    /** Write toJson() to @p path; false (no throw) on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    /** Requires mutex_ held. */
    std::uint32_t threadOrdinalLocked();
    void recordLocked(TraceEvent &&ev);

    const std::size_t capacity_;
    const std::chrono::steady_clock::time_point epoch_;

    std::atomic<std::uint64_t> nextTraceId_{1};
    std::atomic<std::uint64_t> nextQueryId_{1};
    std::atomic<std::uint64_t> nextSpanId_{1};

    mutable std::mutex mutex_;
    std::vector<TraceEvent> ring_; ///< grows to capacity_, then wraps
    std::size_t next_ = 0;         ///< overwrite cursor once full
    std::int64_t dropped_ = 0;
    std::unordered_map<std::thread::id, std::uint32_t> threadOrdinals_;
};

/**
 * The tracing handle threaded through the serving layers: which
 * collector (null = tracing off), which trace/query, and the span the
 * next layer should parent under. Plain value type; copying is two
 * pointers wide.
 */
struct SpanContext
{
    TraceCollector *collector = nullptr;
    std::uint64_t traceId = 0;
    std::uint64_t queryId = 0;
    std::uint64_t parentSpanId = 0;

    /** The zero-overhead-off check every tracing site makes first. */
    bool enabled() const { return collector != nullptr; }
};

/**
 * Per-thread batching recorder: spans land in a local vector and are
 * flushed to the collector in batches, so a dispatcher's hot loop pays
 * one mutex acquisition per batch. With a null collector every call is
 * an inlined early-return no-op.
 */
class SpanRecorder
{
  public:
    SpanRecorder() = default; ///< disabled recorder

    explicit SpanRecorder(TraceCollector *collector,
                          std::size_t batchCapacity = 64)
        : collector_(collector),
          batchCapacity_(batchCapacity == 0 ? 1 : batchCapacity)
    {
        if (collector_)
            batch_.reserve(batchCapacity_);
    }

    ~SpanRecorder() { flush(); }

    SpanRecorder(const SpanRecorder &) = delete;
    SpanRecorder &operator=(const SpanRecorder &) = delete;

    bool enabled() const { return collector_ != nullptr; }

    void
    record(TraceEvent ev)
    {
        if (!collector_)
            return;
        batch_.push_back(ev);
        if (batch_.size() >= batchCapacity_)
            flush();
    }

    void
    flush()
    {
        if (!collector_ || batch_.empty())
            return;
        collector_->recordBatch(batch_);
    }

  private:
    TraceCollector *collector_ = nullptr;
    std::size_t batchCapacity_ = 64;
    std::vector<TraceEvent> batch_;
};

} // namespace c4cam::support

#endif // C4CAM_SUPPORT_TRACE_H
