#include "support/TopKMerge.h"

#include <algorithm>

namespace c4cam::support {

namespace {

/** Heap node: the head of one partial list. */
struct Head
{
    TopKEntry entry;
    std::size_t list = 0;
    std::size_t pos = 0;
};

} // namespace

std::vector<TopKEntry>
mergeTopK(const std::vector<std::vector<TopKEntry>> &partials,
          std::size_t k, bool largest)
{
    // std::push/pop_heap keep the LAST element under the comparator on
    // top, so "ranks before" must compare as "greater": invert
    // topKOrderedBefore.
    auto heap_after = [largest](const Head &a, const Head &b) {
        return topKOrderedBefore(b.entry, a.entry, largest);
    };

    std::vector<Head> heap;
    heap.reserve(partials.size());
    std::size_t total = 0;
    for (std::size_t l = 0; l < partials.size(); ++l) {
        total += partials[l].size();
        if (!partials[l].empty())
            heap.push_back(Head{partials[l][0], l, 0});
    }
    std::make_heap(heap.begin(), heap.end(), heap_after);

    std::vector<TopKEntry> merged;
    merged.reserve(std::min(k, total));
    while (merged.size() < k && !heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), heap_after);
        Head head = heap.back();
        heap.pop_back();
        merged.push_back(head.entry);
        if (head.pos + 1 < partials[head.list].size()) {
            ++head.pos;
            head.entry = partials[head.list][head.pos];
            heap.push_back(head);
            std::push_heap(heap.begin(), heap.end(), heap_after);
        }
    }
    return merged;
}

} // namespace c4cam::support
