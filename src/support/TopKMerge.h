#ifndef C4CAM_SUPPORT_TOPKMERGE_H
#define C4CAM_SUPPORT_TOPKMERGE_H

/**
 * @file
 * Exact M-way merge of per-shard top-k partials.
 *
 * The shard layer partitions the stored-vector axis contiguously
 * across M devices; each shard returns its own top-k (value,
 * local-index) list, already sorted by the device's final top-k
 * comparator. After remapping local indices to global row numbers,
 * mergeTopK() folds the M sorted lists into the global top-k with a
 * heap of list heads.
 *
 * Exactness argument: a single big device sorts all N rows with a
 * stable sort, so equal values break toward the LOWER row index. A
 * contiguous shard plan makes local->global index mapping monotone per
 * shard, so each shard's sorted k-list is exactly the big device's
 * global order restricted to that shard's rows, truncated to k. Any
 * prefix of the global order therefore draws at most k entries from
 * one shard, and an M-way merge under the same comparator -- better
 * value first, equal values toward the lower global index --
 * reproduces the big device's top-k bit-identically (values are
 * row-local computations, unchanged by sharding). This requires every
 * shard to hold at least k rows; ShardPlan enforces that.
 */

#include <cstdint>
#include <vector>

namespace c4cam::support {

/** One (value, global-index) entry of a shard's top-k partial. */
struct TopKEntry
{
    double value = 0.0;
    std::int64_t index = 0;
};

/**
 * The one merge comparator: does @p a rank strictly before @p b?
 * Better value first (@p largest picks the direction), equal values
 * break toward the lower global index -- the order a single device's
 * stable-sorted top-k emits.
 */
inline bool
topKOrderedBefore(const TopKEntry &a, const TopKEntry &b, bool largest)
{
    if (a.value != b.value)
        return largest ? a.value > b.value : a.value < b.value;
    return a.index < b.index;
}

/**
 * Merge M sorted top-k partials into the global first @p k entries.
 * Each inner list must already be sorted by topKOrderedBefore (a
 * shard's own top-k output is). @p k is clamped to the total entry
 * count. O((M + k) log M) via a heap of list heads.
 */
std::vector<TopKEntry>
mergeTopK(const std::vector<std::vector<TopKEntry>> &partials,
          std::size_t k, bool largest);

} // namespace c4cam::support

#endif // C4CAM_SUPPORT_TOPKMERGE_H
