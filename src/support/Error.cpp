#include "support/Error.h"

namespace c4cam {
namespace detail {

void
throwCompilerError(const std::string &msg)
{
    throw CompilerError(msg);
}

void
throwInternalError(const std::string &msg, const char *file, int line)
{
    std::ostringstream oss;
    oss << file << ":" << line << ": internal error: " << msg;
    throw InternalError(oss.str());
}

} // namespace detail
} // namespace c4cam
