#ifndef C4CAM_SUPPORT_STATS_H
#define C4CAM_SUPPORT_STATS_H

/**
 * @file
 * Small numeric helpers for serving statistics.
 *
 * Extracted from core/ServingEngine.cpp so the synchronous and the
 * asynchronous serving front-ends report percentiles through one
 * (tested) implementation instead of two copies that can drift.
 */

#include <cstddef>
#include <vector>

namespace c4cam::support {

/**
 * Bounded sample window for latency percentiles: appends until
 * @p capacity, then overwrites the oldest sample (a ring), so a
 * long-lived serving engine keeps no unbounded per-query history and
 * every percentile poll sorts at most @p capacity values. Percentiles
 * computed from it describe the most recent `capacity` samples.
 *
 * Shared by the sync and async serving engines -- one implementation
 * of the window-insert/cursor logic, for the same reason percentile()
 * itself lives here: two copies drift. NOT thread-safe; callers
 * guard it with their own stats mutex.
 */
class LatencyWindow
{
  public:
    explicit LatencyWindow(std::size_t capacity = 4096)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    void
    record(double sample)
    {
        if (samples_.size() < capacity_) {
            samples_.push_back(sample);
        } else {
            samples_[cursor_] = sample;
            cursor_ = (cursor_ + 1) % capacity_;
        }
    }

    std::size_t size() const { return samples_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Sorted copy of the current samples (ready for percentile()). */
    std::vector<double> sorted() const;

  private:
    std::size_t capacity_;
    std::vector<double> samples_;
    std::size_t cursor_ = 0;
};

/**
 * Nearest-rank percentile over @p sorted (ascending).
 *
 * Returns the smallest element whose rank k (1-based) satisfies
 * k * 100 >= p * n -- the classic nearest-rank definition, so
 * percentile(v, 100) is the maximum and percentile(v, 50) of an
 * even-length sequence is the lower median. 0.0 on an empty vector.
 *
 * The rank is computed with exact comparisons instead of
 * ceil(p / 100.0 * n): the division rounds p/100 away from the exact
 * value for most p (0.28, 0.55, ... have no double representation),
 * and the subsequent multiply can land one ulp above an integral
 * rank, which ceil() then bumps to the next rank -- an off-by-one
 * that made the old ServingEngine copy return the 8th element for
 * p28/n25 (exact rank: 7), among ~27 such integral-rank points for
 * n <= 200. p * n itself is exact for integral percentiles and every
 * realistic sample count, so comparing against k * 100 never
 * misranks.
 *
 * @p p is clamped to [0, 100]; @p sorted must be sorted ascending
 * (the function trusts, not checks).
 */
double percentile(const std::vector<double> &sorted, double p);

} // namespace c4cam::support

#endif // C4CAM_SUPPORT_STATS_H
