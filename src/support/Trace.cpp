#include "support/Trace.h"

#include <fstream>
#include <utility>

#include "support/Json.h"

namespace c4cam::support {

TraceCollector::TraceCollector(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now())
{
    ring_.reserve(capacity_ > 4096 ? 4096 : capacity_);
}

std::size_t
TraceCollector::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

std::int64_t
TraceCollector::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

std::uint32_t
TraceCollector::threadOrdinalLocked()
{
    auto [it, inserted] = threadOrdinals_.try_emplace(
        std::this_thread::get_id(),
        static_cast<std::uint32_t>(threadOrdinals_.size() + 1));
    (void)inserted;
    return it->second;
}

void
TraceCollector::recordLocked(TraceEvent &&ev)
{
    if (ev.tid == 0)
        ev.tid = threadOrdinalLocked();
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(ev));
        next_ = ring_.size() % capacity_;
        return;
    }
    ring_[next_] = std::move(ev);
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
}

void
TraceCollector::record(TraceEvent ev)
{
    std::lock_guard<std::mutex> lock(mutex_);
    recordLocked(std::move(ev));
}

void
TraceCollector::recordBatch(std::vector<TraceEvent> &events)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (TraceEvent &ev : events)
            recordLocked(std::move(ev));
    }
    events.clear();
}

std::vector<TraceEvent>
TraceCollector::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.size() < capacity_)
        return ring_;
    // Full ring: next_ points at the oldest event.
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(next_));
    return out;
}

namespace {

JsonValue
simToJson(const TraceEvent &ev)
{
    JsonValue sim = JsonValue::makeObject();
    sim.set("query_latency_ns", JsonValue(ev.simQueryLatencyNs));
    sim.set("query_energy_pj", JsonValue(ev.simQueryEnergyPj));
    sim.set("cell_energy_pj", JsonValue(ev.simCellEnergyPj));
    sim.set("sense_energy_pj", JsonValue(ev.simSenseEnergyPj));
    sim.set("drive_energy_pj", JsonValue(ev.simDriveEnergyPj));
    sim.set("merge_energy_pj", JsonValue(ev.simMergeEnergyPj));
    sim.set("setup_latency_ns", JsonValue(ev.simSetupLatencyNs));
    sim.set("setup_energy_pj", JsonValue(ev.simSetupEnergyPj));
    sim.set("searches", JsonValue(double(ev.simSearches)));
    return sim;
}

JsonValue
spanToJson(const TraceEvent &ev)
{
    JsonValue span = JsonValue::makeObject();
    span.set("name", JsonValue(std::string(ev.name)));
    span.set("trace", JsonValue(double(ev.traceId)));
    span.set("query", JsonValue(double(ev.queryId)));
    span.set("span", JsonValue(double(ev.spanId)));
    span.set("parent", JsonValue(double(ev.parentSpanId)));
    span.set("tid", JsonValue(double(ev.tid)));
    span.set("start_us", JsonValue(ev.startUs));
    span.set("dur_us", JsonValue(ev.durUs));
    if (ev.fusedK > 0)
        span.set("fused_k", JsonValue(double(ev.fusedK)));
    if (ev.hasSim)
        span.set("sim", simToJson(ev));
    return span;
}

JsonValue
chromeEventToJson(const TraceEvent &ev)
{
    // Chrome trace_event "complete" event: one "X" record per span.
    JsonValue e = JsonValue::makeObject();
    e.set("name", JsonValue(std::string(ev.name)));
    e.set("ph", JsonValue(std::string("X")));
    e.set("ts", JsonValue(ev.startUs));
    e.set("dur", JsonValue(ev.durUs));
    e.set("pid", JsonValue(1.0));
    e.set("tid", JsonValue(double(ev.tid)));
    JsonValue args = JsonValue::makeObject();
    args.set("trace", JsonValue(double(ev.traceId)));
    args.set("query", JsonValue(double(ev.queryId)));
    args.set("span", JsonValue(double(ev.spanId)));
    args.set("parent", JsonValue(double(ev.parentSpanId)));
    if (ev.fusedK > 0)
        args.set("fused_k", JsonValue(double(ev.fusedK)));
    if (ev.hasSim)
        args.set("sim", simToJson(ev));
    e.set("args", args);
    return e;
}

} // namespace

JsonValue
TraceCollector::toJson() const
{
    std::vector<TraceEvent> events = snapshot();
    JsonValue doc = JsonValue::makeObject();
    doc.set("schema", JsonValue(std::string("c4cam-trace-v1")));
    JsonValue spans = JsonValue::makeArray();
    JsonValue chrome = JsonValue::makeArray();
    for (const TraceEvent &ev : events) {
        spans.append(spanToJson(ev));
        chrome.append(chromeEventToJson(ev));
    }
    doc.set("spans", spans);
    doc.set("traceEvents", chrome);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        doc.set("dropped", JsonValue(double(dropped_)));
    }
    return doc;
}

bool
TraceCollector::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out.good())
        return false;
    out << toJson().dump(2) << "\n";
    return out.good();
}

} // namespace c4cam::support
