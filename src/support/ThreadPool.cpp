#include "support/ThreadPool.h"

#include <algorithm>

#include "support/Error.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#define C4CAM_HAVE_PTHREAD_AFFINITY 1
#else
#define C4CAM_HAVE_PTHREAD_AFFINITY 0
#endif

namespace c4cam::support {

ThreadPool::ThreadPool(std::size_t threads)
    : ThreadPool(ThreadPoolOptions{threads, std::string(), false, 0})
{
}

ThreadPool::ThreadPool(const ThreadPoolOptions &options)
{
    std::size_t threads = options.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
        placeWorker(workers_.back(), options, i);
    }
}

bool
ThreadPool::affinitySupported()
{
    return C4CAM_HAVE_PTHREAD_AFFINITY != 0;
}

void
ThreadPool::placeWorker(std::thread &worker,
                        const ThreadPoolOptions &options, std::size_t index)
{
#if C4CAM_HAVE_PTHREAD_AFFINITY
    pthread_t handle = worker.native_handle();
    if (!options.namePrefix.empty()) {
        // Linux caps thread names at 15 chars + NUL; a longer name
        // makes pthread_setname_np fail outright, so truncate.
        std::string name = options.namePrefix + std::to_string(index);
        if (name.size() > 15)
            name.resize(15);
        (void)pthread_setname_np(handle, name.c_str());
    }
    if (options.pinThreads) {
        unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
        std::size_t cpu = (options.pinOffset + index) % cpus;
        cpu_set_t set;
        CPU_ZERO(&set);
        CPU_SET(cpu, &set);
        // Best effort: a restricted cpuset (containers, taskset) can
        // legitimately refuse the target CPU.
        (void)pthread_setaffinity_np(handle, sizeof(set), &set);
    }
#else
    (void)worker;
    (void)options;
    (void)index;
#endif
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        C4CAM_CHECK(!stopping_, "submit on a stopping ThreadPool");
        queue_.push_back(std::move(job));
    }
    wake_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        // Exceptions are captured by the packaged_task wrapper; a
        // throwing raw job would terminate, so submit() is the only
        // public entry point.
        job();
    }
}

} // namespace c4cam::support
