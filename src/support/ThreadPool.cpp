#include "support/ThreadPool.h"

#include <algorithm>

#include "support/Error.h"

namespace c4cam::support {

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        C4CAM_CHECK(!stopping_, "submit on a stopping ThreadPool");
        queue_.push_back(std::move(job));
    }
    wake_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        // Exceptions are captured by the packaged_task wrapper; a
        // throwing raw job would terminate, so submit() is the only
        // public entry point.
        job();
    }
}

} // namespace c4cam::support
