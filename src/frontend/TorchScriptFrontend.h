#ifndef C4CAM_FRONTEND_TORCHSCRIPTFRONTEND_H
#define C4CAM_FRONTEND_TORCHSCRIPTFRONTEND_H

/**
 * @file
 * TorchScript-subset frontend: Python-like source -> torch IR.
 *
 * Stand-in for the PyTorch MLIR converter of §III-C. It accepts the
 * TorchScript patterns the paper compiles (similarity kernels built from
 * transpose / matmul / mm / sub / div / norm / topk) and emits the torch
 * dialect. As in the paper, the frontend is extended with the `norm` and
 * `topk` search primitives.
 *
 * Input shapes come from parameter annotations (our stand-in for
 * trace-time shape propagation):
 *
 *   def forward(input: Tensor[10, 8192], weight: Tensor[10, 8192]):
 *       others = weight.transpose(-2, -1)
 *       scores = torch.matmul(input, others)
 *       values, indices = torch.topk(scores, 1, largest=False)
 *       return indices
 *
 * `self.name` references are treated as parameters named `name`.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/IR.h"

namespace c4cam::frontend {

/**
 * Parameter-shape substitutions applied while parsing: key is the
 * 0-based tensor parameter index (the `self` receiver does not
 * count), value replaces the annotated shape. The override must keep
 * the annotated rank -- the kernel body was written against it -- but
 * may change any extent. This is how the sharding layer re-instances
 * one kernel source per shard slice (stored rows 1024 -> 256) without
 * editing source text: shapes are compile-time facts here (the
 * stand-in for trace-time shape propagation), so re-parsing with an
 * override is the honest equivalent of re-tracing with smaller
 * inputs.
 */
using ShapeOverrides = std::map<std::size_t, std::vector<std::int64_t>>;

/**
 * Parse @p source and append a func.func to @p module.
 * Raises CompilerError with line info on unsupported constructs.
 * @p overrides (optional) substitutes parameter shapes; a key past
 * the last parameter or a rank mismatch is a CompilerError.
 * @return the created function op.
 */
ir::Operation *importTorchScript(ir::Module &module,
                                 const std::string &source,
                                 const ShapeOverrides *overrides = nullptr);

/** Convenience: parse into a fresh module (dialects must be loaded). */
ir::Module parseTorchScriptModule(ir::Context &ctx,
                                  const std::string &source,
                                  const ShapeOverrides *overrides = nullptr);

} // namespace c4cam::frontend

#endif // C4CAM_FRONTEND_TORCHSCRIPTFRONTEND_H
