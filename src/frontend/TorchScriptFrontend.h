#ifndef C4CAM_FRONTEND_TORCHSCRIPTFRONTEND_H
#define C4CAM_FRONTEND_TORCHSCRIPTFRONTEND_H

/**
 * @file
 * TorchScript-subset frontend: Python-like source -> torch IR.
 *
 * Stand-in for the PyTorch MLIR converter of §III-C. It accepts the
 * TorchScript patterns the paper compiles (similarity kernels built from
 * transpose / matmul / mm / sub / div / norm / topk) and emits the torch
 * dialect. As in the paper, the frontend is extended with the `norm` and
 * `topk` search primitives.
 *
 * Input shapes come from parameter annotations (our stand-in for
 * trace-time shape propagation):
 *
 *   def forward(input: Tensor[10, 8192], weight: Tensor[10, 8192]):
 *       others = weight.transpose(-2, -1)
 *       scores = torch.matmul(input, others)
 *       values, indices = torch.topk(scores, 1, largest=False)
 *       return indices
 *
 * `self.name` references are treated as parameters named `name`.
 */

#include <string>

#include "ir/IR.h"

namespace c4cam::frontend {

/**
 * Parse @p source and append a func.func to @p module.
 * Raises CompilerError with line info on unsupported constructs.
 * @return the created function op.
 */
ir::Operation *importTorchScript(ir::Module &module,
                                 const std::string &source);

/** Convenience: parse into a fresh module (dialects must be loaded). */
ir::Module parseTorchScriptModule(ir::Context &ctx,
                                  const std::string &source);

} // namespace c4cam::frontend

#endif // C4CAM_FRONTEND_TORCHSCRIPTFRONTEND_H
