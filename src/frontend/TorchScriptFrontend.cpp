#include "frontend/TorchScriptFrontend.h"

#include <cctype>
#include <map>
#include <optional>
#include <vector>

#include "dialects/BuiltinDialect.h"
#include "dialects/torch/TorchDialect.h"
#include "ir/Builder.h"
#include "support/Error.h"
#include "support/StringUtils.h"

namespace c4cam::frontend {

using namespace ir;
namespace torchd = c4cam::dialects::torch;

namespace {

/** A parsed actual argument: positional or keyword. */
struct CallArg
{
    std::string keyword;     ///< empty for positional
    Value *value = nullptr;  ///< tensor argument
    std::optional<std::int64_t> literal; ///< integer/bool literal
};

/**
 * Line-oriented recursive-descent parser for the TorchScript subset.
 */
class Parser
{
  public:
    Parser(Module &module, const std::string &source,
           const ShapeOverrides *overrides)
        : module_(module), builder_(module.context()), source_(source),
          overrides_(overrides)
    {}

    Operation *
    run()
    {
        lines_ = splitString(source_, '\n');
        parseHeader();
        for (; lineNo_ < lines_.size(); ++lineNo_) {
            line_ = trimString(stripComment(lines_[lineNo_]));
            if (line_.empty())
                continue;
            pos_ = 0;
            parseStatement();
            if (returned_)
                break;
        }
        C4CAM_CHECK(returned_, "function '" << funcName_
                    << "' has no return statement");
        return func_;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        C4CAM_USER_ERROR("TorchScript line " << (lineNo_ + 1) << ": "
                         << what);
    }

    static std::string
    stripComment(const std::string &s)
    {
        auto pos = s.find('#');
        return pos == std::string::npos ? s : s.substr(0, pos);
    }

    //
    // Character helpers over the current line.
    //

    void
    skipSpaces()
    {
        while (pos_ < line_.size() &&
               std::isspace(static_cast<unsigned char>(line_[pos_])))
            ++pos_;
    }

    bool
    tryConsume(const std::string &tok)
    {
        skipSpaces();
        if (line_.compare(pos_, tok.size(), tok) == 0) {
            pos_ += tok.size();
            return true;
        }
        return false;
    }

    void
    expect(const std::string &tok)
    {
        if (!tryConsume(tok))
            fail("expected '" + tok + "' in '" + line_ + "'");
    }

    bool
    peekChar(char c)
    {
        skipSpaces();
        return pos_ < line_.size() && line_[pos_] == c;
    }

    bool
    atLineEnd()
    {
        skipSpaces();
        return pos_ >= line_.size();
    }

    std::string
    parseIdent()
    {
        skipSpaces();
        std::string out;
        while (pos_ < line_.size() &&
               (std::isalnum(static_cast<unsigned char>(line_[pos_])) ||
                line_[pos_] == '_')) {
            out += line_[pos_++];
        }
        if (out.empty())
            fail("expected identifier in '" + line_ + "'");
        return out;
    }

    std::int64_t
    parseIntLiteral()
    {
        skipSpaces();
        std::size_t start = pos_;
        if (pos_ < line_.size() && line_[pos_] == '-')
            ++pos_;
        while (pos_ < line_.size() &&
               std::isdigit(static_cast<unsigned char>(line_[pos_])))
            ++pos_;
        if (start == pos_)
            fail("expected integer literal");
        return std::stoll(line_.substr(start, pos_ - start));
    }

    //
    // Header: def name(arg: Tensor[a, b], ...) [-> ...] :
    //

    void
    parseHeader()
    {
        // Find the "def" line.
        for (; lineNo_ < lines_.size(); ++lineNo_) {
            line_ = trimString(stripComment(lines_[lineNo_]));
            if (!line_.empty())
                break;
        }
        C4CAM_CHECK(lineNo_ < lines_.size(), "empty TorchScript source");
        pos_ = 0;
        expect("def");
        funcName_ = parseIdent();
        expect("(");

        std::vector<std::string> arg_names;
        std::vector<Type> arg_types;
        skipSpaces();
        if (!tryConsume(")")) {
            while (true) {
                std::string name = parseIdent();
                if (name == "self") {
                    // Method receiver: ignored.
                } else {
                    expect(":");
                    std::size_t index = arg_names.size();
                    arg_names.push_back(name);
                    arg_types.push_back(
                        applyOverride(index, name,
                                      parseTensorAnnotation()));
                }
                skipSpaces();
                if (tryConsume(")"))
                    break;
                expect(",");
            }
        }
        // Ignore an optional "-> ..." result annotation.
        // (the colon may follow it or come directly)

        if (overrides_ && !overrides_->empty()) {
            std::size_t last = overrides_->rbegin()->first;
            C4CAM_CHECK(last < arg_names.size(),
                        "shape override for parameter " << last
                        << " but '" << funcName_ << "' has only "
                        << arg_names.size() << " tensor parameters");
        }

        func_ = dialects::createFunction(module_, funcName_, arg_types);
        Block *body = dialects::funcBody(func_);
        builder_.setInsertionPointToEnd(body);
        for (std::size_t i = 0; i < arg_names.size(); ++i)
            scope_[arg_names[i]] = body->argument(i);
        ++lineNo_;
    }

    /** Tensor[a, b] or Tensor (requires explicit dims for params). */
    Type
    parseTensorAnnotation()
    {
        expect("Tensor");
        Context &ctx = module_.context();
        std::vector<std::int64_t> shape;
        if (tryConsume("[")) {
            while (true) {
                shape.push_back(parseIntLiteral());
                skipSpaces();
                if (tryConsume("]"))
                    break;
                expect(",");
            }
        } else {
            fail("parameter tensors need explicit shapes: Tensor[a, b]");
        }
        return ctx.tensorType(shape, ctx.f32());
    }

    /** Substitute the caller's shape override for parameter @p index
     *  (keyed past `self`), keeping the annotated rank. */
    Type
    applyOverride(std::size_t index, const std::string &name,
                  Type annotated)
    {
        if (!overrides_)
            return annotated;
        auto it = overrides_->find(index);
        if (it == overrides_->end())
            return annotated;
        const std::vector<std::int64_t> &shape = it->second;
        C4CAM_CHECK(shape.size() == annotated.shape().size(),
                    "shape override for parameter '" << name
                    << "' has rank " << shape.size()
                    << " but the annotation has rank "
                    << annotated.shape().size());
        for (std::int64_t dim : shape)
            C4CAM_CHECK(dim > 0, "shape override for parameter '"
                        << name << "' has non-positive extent " << dim);
        return module_.context().tensorType(shape,
                                            module_.context().f32());
    }

    //
    // Statements
    //

    void
    parseStatement()
    {
        if (tryConsume("return")) {
            std::vector<Value *> results;
            if (!atLineEnd()) {
                while (true) {
                    results.push_back(parseExpr());
                    if (!tryConsume(","))
                        break;
                }
            }
            builder_.create(kReturnOpName, results, {});
            returned_ = true;
            return;
        }
        // Assignment: name [, name] = expr
        std::string first = parseIdent();
        if (tryConsume(",")) {
            std::string second = parseIdent();
            expect("=");
            Operation *op = parseCallExpr();
            C4CAM_CHECK(op && op->numResults() == 2,
                        "destructuring assignment requires a 2-result op "
                        "(topk)");
            scope_[first] = op->result(0);
            scope_[second] = op->result(1);
            return;
        }
        expect("=");
        scope_[first] = parseExpr();
    }

    //
    // Expressions
    //

    /** expr := unary (('-' | '/') unary)* */
    Value *
    parseExpr()
    {
        Value *lhs = parseUnary();
        while (true) {
            skipSpaces();
            if (peekChar('-') && !peekDigitAfter('-')) {
                ++pos_;
                Value *rhs = parseUnary();
                lhs = createBinary(torchd::kSub, lhs, rhs);
            } else if (peekChar('/')) {
                ++pos_;
                Value *rhs = parseUnary();
                lhs = createBinary(torchd::kDiv, lhs, rhs);
            } else {
                break;
            }
        }
        return lhs;
    }

    bool
    peekDigitAfter(char c)
    {
        skipSpaces();
        if (pos_ >= line_.size() || line_[pos_] != c)
            return false;
        std::size_t next = pos_ + 1;
        return next < line_.size() &&
               std::isdigit(static_cast<unsigned char>(line_[next]));
    }

    Value *
    parseUnary()
    {
        skipSpaces();
        if (tryConsume("(")) {
            Value *inner = parseExpr();
            expect(")");
            return parsePostfix(inner);
        }
        Operation *call = tryParseCall();
        if (call) {
            C4CAM_CHECK(call->numResults() == 1,
                        "multi-result call used as a single value");
            return parsePostfix(call->result(0));
        }
        // Variable or self.attr reference.
        std::string name = parseIdent();
        if (name == "self") {
            expect(".");
            name = parseIdent();
        }
        auto it = scope_.find(name);
        if (it == scope_.end())
            fail("use of undefined variable '" + name + "'");
        return parsePostfix(it->second);
    }

    /** Method-call postfix: x.transpose(a, b), x.norm(...). */
    Value *
    parsePostfix(Value *value)
    {
        while (peekChar('.')) {
            ++pos_;
            std::string method = parseIdent();
            expect("(");
            std::vector<CallArg> args = parseCallArgs();
            Operation *op = buildTorchOp(method, value, args);
            C4CAM_CHECK(op->numResults() == 1,
                        "method '" << method << "' used as single value");
            value = op->result(0);
        }
        return value;
    }

    /** Try parsing torch.xxx(...) / torch.ops.aten.xxx(...). */
    Operation *
    tryParseCall()
    {
        std::size_t save = pos_;
        skipSpaces();
        if (line_.compare(pos_, 6, "torch.") != 0)
            return nullptr;
        pos_ += 6;
        // optional ops.aten. prefix
        if (line_.compare(pos_, 9, "ops.aten.") == 0)
            pos_ += 9;
        std::string fn = parseIdent();
        if (!tryConsume("(")) {
            pos_ = save;
            return nullptr;
        }
        std::vector<CallArg> args = parseCallArgs();
        C4CAM_CHECK(!args.empty() && args[0].value,
                    "torch." << fn << " needs a tensor first argument");
        Value *self = args[0].value;
        args.erase(args.begin());
        return buildTorchOp(fn, self, args);
    }

    Operation *
    parseCallExpr()
    {
        Operation *op = tryParseCall();
        if (op)
            return op;
        // x.method(...) with 2 results (topk destructuring).
        std::string name = parseIdent();
        if (name == "self") {
            expect(".");
            name = parseIdent();
        }
        auto it = scope_.find(name);
        if (it == scope_.end())
            fail("use of undefined variable '" + name + "'");
        Value *value = it->second;
        expect(".");
        std::string method = parseIdent();
        expect("(");
        std::vector<CallArg> args = parseCallArgs();
        return buildTorchOp(method, value, args);
    }

    /** Parse up to ')' a list of positional/keyword args. */
    std::vector<CallArg>
    parseCallArgs()
    {
        std::vector<CallArg> args;
        skipSpaces();
        if (tryConsume(")"))
            return args;
        while (true) {
            CallArg arg;
            skipSpaces();
            // keyword= ?
            std::size_t save = pos_;
            if (std::isalpha(static_cast<unsigned char>(line_[pos_]))) {
                std::string ident = parseIdent();
                if (tryConsume("=") && !peekChar('=')) {
                    arg.keyword = ident;
                } else {
                    pos_ = save;
                }
            }
            skipSpaces();
            if (pos_ < line_.size() &&
                (std::isdigit(static_cast<unsigned char>(line_[pos_])) ||
                 (line_[pos_] == '-' && peekDigitAfter('-')))) {
                arg.literal = parseIntLiteral();
            } else if (tryConsume("True")) {
                arg.literal = 1;
            } else if (tryConsume("False")) {
                arg.literal = 0;
            } else if (tryConsume("None")) {
                arg.literal = std::nullopt; // ignored placeholder
                arg.keyword = arg.keyword.empty() ? "_none" : arg.keyword;
            } else {
                arg.value = parseExpr();
            }
            args.push_back(arg);
            skipSpaces();
            if (tryConsume(")"))
                break;
            expect(",");
        }
        return args;
    }

    Value *
    createBinary(const std::string &op_name, Value *lhs, Value *rhs)
    {
        Type result = inferBinaryType(op_name, lhs->type(), rhs->type());
        return builder_.create(op_name, {lhs, rhs}, {result})->result(0);
    }

    Type
    inferBinaryType(const std::string &op_name, Type a, Type b)
    {
        Context &ctx = module_.context();
        if (op_name == torchd::kSub && a.shape() != b.shape()) {
            // KNN broadcast: QxD - NxD -> QxNxD.
            C4CAM_CHECK(a.rank() == 2 && b.rank() == 2 &&
                            a.shape()[1] == b.shape()[1],
                        "cannot broadcast sub of " << a.str() << " and "
                        << b.str());
            return ctx.tensorType({a.shape()[0], b.shape()[0],
                                   a.shape()[1]},
                                  ctx.f32());
        }
        return a;
    }

    /** Map a TorchScript call to a torch dialect op with shape infer. */
    Operation *
    buildTorchOp(const std::string &fn, Value *self,
                 const std::vector<CallArg> &args)
    {
        Context &ctx = module_.context();
        Type self_type = self->type();

        auto positional = [&](std::size_t i) -> const CallArg * {
            std::size_t seen = 0;
            for (const auto &a : args) {
                if (!a.keyword.empty())
                    continue;
                if (seen == i)
                    return &a;
                ++seen;
            }
            return nullptr;
        };
        auto keyword = [&](const std::string &kw) -> const CallArg * {
            for (const auto &a : args)
                if (a.keyword == kw)
                    return &a;
            return nullptr;
        };

        if (fn == "transpose") {
            const CallArg *d0 = positional(0);
            const CallArg *d1 = positional(1);
            C4CAM_CHECK(d0 && d1 && d0->literal && d1->literal,
                        "transpose requires two integer dims");
            C4CAM_CHECK(self_type.rank() == 2,
                        "transpose supports rank-2 tensors");
            Type out = ctx.tensorType(
                {self_type.shape()[1], self_type.shape()[0]}, ctx.f32());
            return builder_.create(torchd::kTranspose, {self}, {out},
                                   {{"dim0", Attribute(*d0->literal)},
                                    {"dim1", Attribute(*d1->literal)}});
        }
        if (fn == "matmul" || fn == "mm") {
            const CallArg *other = positional(0);
            C4CAM_CHECK(other && other->value,
                        fn << " requires a tensor argument");
            Type b = other->value->type();
            C4CAM_CHECK(self_type.rank() == 2 && b.rank() == 2 &&
                            self_type.shape()[1] == b.shape()[0],
                        fn << ": incompatible shapes " << self_type.str()
                        << " x " << b.str());
            Type out = ctx.tensorType(
                {self_type.shape()[0], b.shape()[1]}, ctx.f32());
            return builder_.create(
                fn == "mm" ? torchd::kMm : torchd::kMatmul,
                {self, other->value}, {out});
        }
        if (fn == "sub") {
            const CallArg *other = positional(0);
            C4CAM_CHECK(other && other->value,
                        "sub requires a tensor argument");
            return createBinary(torchd::kSub, self, other->value)
                ->definingOp();
        }
        if (fn == "div") {
            const CallArg *other = positional(0);
            C4CAM_CHECK(other && other->value,
                        "div requires a tensor argument");
            return createBinary(torchd::kDiv, self, other->value)
                ->definingOp();
        }
        if (fn == "norm") {
            std::int64_t p = 2;
            if (const CallArg *arg = positional(0); arg && arg->literal)
                p = *arg->literal;
            if (const CallArg *arg = keyword("p"); arg && arg->literal)
                p = *arg->literal;
            std::vector<std::int64_t> shape(self_type.shape().begin(),
                                            self_type.shape().end() - 1);
            if (shape.empty())
                shape.push_back(1);
            Type out = ctx.tensorType(shape, ctx.f32());
            return builder_.create(torchd::kNorm, {self}, {out},
                                   {{"p", Attribute(p)},
                                    {"dim", Attribute(std::int64_t(-1))}});
        }
        if (fn == "topk") {
            const CallArg *karg = positional(0);
            C4CAM_CHECK(karg && karg->literal,
                        "topk requires an integer k");
            std::int64_t k = *karg->literal;
            bool largest = true;
            if (const CallArg *arg = keyword("largest");
                arg && arg->literal)
                largest = *arg->literal != 0;
            else if (const CallArg *arg2 = positional(2);
                     arg2 && arg2->literal)
                largest = *arg2->literal != 0;
            std::vector<std::int64_t> shape(self_type.shape());
            C4CAM_CHECK(!shape.empty(), "topk on a scalar");
            shape.back() = k;
            Type vals = ctx.tensorType(shape, ctx.f32());
            Type idxs = ctx.tensorType(shape, ctx.f32());
            return builder_.create(
                torchd::kTopk, {self}, {vals, idxs},
                {{"k", Attribute(k)},
                 {"dim", Attribute(std::int64_t(-1))},
                 {"largest", Attribute(largest)}});
        }
        fail("unsupported torch function '" + fn + "'");
    }

    Module &module_;
    OpBuilder builder_;
    const std::string &source_;
    const ShapeOverrides *overrides_ = nullptr;
    std::vector<std::string> lines_;
    std::size_t lineNo_ = 0;
    std::string line_;
    std::size_t pos_ = 0;

    std::string funcName_;
    Operation *func_ = nullptr;
    std::map<std::string, Value *> scope_;
    bool returned_ = false;
};

} // namespace

Operation *
importTorchScript(Module &module, const std::string &source,
                  const ShapeOverrides *overrides)
{
    return Parser(module, source, overrides).run();
}

Module
parseTorchScriptModule(Context &ctx, const std::string &source,
                       const ShapeOverrides *overrides)
{
    Module module(ctx);
    importTorchScript(module, source, overrides);
    return module;
}

} // namespace c4cam::frontend
