/**
 * @file
 * c4cam-run: compile a TorchScript kernel and execute it on the CAM
 * simulator with synthetic data.
 *
 *   c4cam-run kernel.py --arch spec.json [--queries-equal-rows]
 *                       [--seed N] [--print-ir] [--batch N] [--json]
 *
 * Generates deterministic +-1 inputs for each tensor parameter, runs
 * the compiled kernel, prints the outputs and the performance report.
 * With --queries-equal-rows, query i is a copy of stored row
 * (2*i mod N) so the expected top-1 indices are obvious.
 *
 * With --batch N the kernel is served through one persistent
 * ExecutionSession: the device is programmed once (setup phase) and N
 * query batches are executed against it, reporting per-query and
 * amortized figures (paper §III-D setup/search split).
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "arch/ArchSpec.h"
#include "core/Compiler.h"
#include "core/ExecutionSession.h"
#include "dialects/BuiltinDialect.h"
#include "support/Error.h"
#include "support/Json.h"
#include "support/Rng.h"

using namespace c4cam;

namespace {

int
usage()
{
    std::cerr << "usage: c4cam-run <kernel.py|-> [--arch spec.json]"
              << " [--seed N] [--queries-equal-rows] [--print-ir]"
              << " [--host-only] [--batch N] [--json]\n";
    return 2;
}

/** Make query row q a copy of stored row ((offset + 2*q) mod N). */
void
fillQueriesFromStored(const rt::BufferPtr &queries,
                      const rt::BufferPtr &stored, std::int64_t offset)
{
    std::int64_t n = stored->shape()[0];
    for (std::int64_t q = 0; q < queries->shape()[0]; ++q)
        for (std::int64_t c = 0; c < queries->shape()[1]; ++c)
            queries->set({q, c}, stored->at({(offset + 2 * q) % n, c}));
}

void
printOutputs(const std::vector<rt::RtValue> &outputs)
{
    for (std::size_t i = 0; i < outputs.size(); ++i) {
        const rt::RtValue &out = outputs[i];
        if (out.isBuffer())
            std::cout << "output[" << i << "] = " << out.asBuffer()->str()
                      << "\n";
        else if (out.isInt())
            std::cout << "output[" << i << "] = " << out.asInt() << "\n";
        else
            std::cout << "output[" << i << "] = " << out.asFloat() << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input_path;
    std::string arch_path;
    std::uint64_t seed = 42;
    bool queries_equal_rows = false;
    bool print_ir = false;
    bool host_only = false;
    bool json = false;
    long batch = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--arch") {
            if (++i >= argc)
                return usage();
            arch_path = argv[i];
        } else if (arg == "--seed") {
            if (++i >= argc)
                return usage();
            seed = std::stoull(argv[i]);
        } else if (arg == "--batch") {
            if (++i >= argc)
                return usage();
            batch = std::stol(argv[i]);
            if (batch <= 0)
                return usage();
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--queries-equal-rows") {
            queries_equal_rows = true;
        } else if (arg == "--print-ir") {
            print_ir = true;
        } else if (arg == "--host-only") {
            host_only = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage();
        } else if (input_path.empty()) {
            input_path = arg;
        } else {
            return usage();
        }
    }
    if (input_path.empty())
        return usage();

    try {
        std::string source;
        if (input_path == "-") {
            std::ostringstream oss;
            oss << std::cin.rdbuf();
            source = oss.str();
        } else {
            std::ifstream in(input_path);
            C4CAM_CHECK(in.good(), "cannot open '" << input_path << "'");
            std::ostringstream oss;
            oss << in.rdbuf();
            source = oss.str();
        }

        core::CompilerOptions options;
        if (!arch_path.empty())
            options.spec = arch::ArchSpec::fromFile(arch_path);
        options.hostOnly = host_only;
        core::Compiler compiler(options);
        core::CompiledKernel kernel = compiler.compileTorchScript(source);

        if (print_ir)
            std::cout << kernel.module().str() << "\n";

        // Synthesize +-1 inputs matching the function signature.
        ir::Operation *func =
            kernel.module().lookupFunction(kernel.entryPoint());
        ir::Block *body = dialects::funcBody(func);
        std::vector<rt::BufferPtr> args;
        Rng rng(seed);
        for (std::size_t i = 0; i < body->numArguments(); ++i) {
            ir::Type t = body->argument(i)->type();
            C4CAM_CHECK(t.isTensor() && t.rank() == 2,
                        "c4cam-run synthesizes rank-2 tensor args only");
            auto buf = rt::Buffer::alloc(rt::DType::F32, t.shape());
            for (std::int64_t r = 0; r < t.shape()[0]; ++r)
                for (std::int64_t c = 0; c < t.shape()[1]; ++c)
                    buf->set({r, c}, rng.nextBool() ? 1.0 : -1.0);
            args.push_back(buf);
        }
        if (queries_equal_rows && args.size() >= 2)
            fillQueriesFromStored(args[0], args[1], 0);

        if (batch > 0) {
            // Persistent serving: program the device once, then serve
            // `batch` query batches through one ExecutionSession.
            C4CAM_CHECK(!args.empty(),
                        "--batch requires a kernel with at least one "
                        "tensor parameter (the query)");
            core::ExecutionSession session = kernel.createSession(args);
            const rt::BufferPtr &queries = args[0];
            core::ExecutionResult first;
            for (long b = 0; b < batch; ++b) {
                // Fresh query content per batch so serving is not a
                // no-op; --queries-equal-rows keeps answers obvious.
                if (queries_equal_rows && args.size() >= 2) {
                    fillQueriesFromStored(queries, args[1], b);
                } else {
                    for (std::int64_t q = 0; q < queries->shape()[0]; ++q)
                        for (std::int64_t c = 0; c < queries->shape()[1];
                             ++c)
                            queries->set({q, c},
                                         rng.nextBool() ? 1.0 : -1.0);
                }
                core::ExecutionResult result = session.runQuery(args);
                if (b == 0)
                    first = std::move(result);
            }
            sim::PerfReport total = session.aggregateReport();
            if (json) {
                std::cout << total.toJson().dump(2) << "\n";
                return 0;
            }
            std::cout << "batch 0 outputs:\n";
            printOutputs(first.outputs);
            if (session.persistent())
                std::cout << "setup: " << session.setupReport().str()
                          << "\n";
            std::cout << "aggregate: " << total.str() << "\n";
            std::cout << "amortized: " << total.amortizedLatencyNs()
                      << " ns/query, " << total.amortizedEnergyPj()
                      << " pJ/query over " << total.queriesServed
                      << " queries\n";
            return 0;
        }

        core::ExecutionResult result = kernel.run(args);

        if (json) {
            std::cout << result.perf.toJson().dump(2) << "\n";
            return 0;
        }
        printOutputs(result.outputs);
        if (!host_only) {
            std::cout << "perf: " << result.perf.str() << "\n";
            const auto &plan = kernel.plan();
            std::cout << "mapping: " << plan.logicalTiles << " tiles -> "
                      << plan.physicalSubarrays << " subarrays, "
                      << plan.banks << " banks, "
                      << plan.batchesPerSubarray
                      << " batches/subarray\n";
        }
        return 0;
    } catch (const CompilerError &err) {
        std::cerr << "error: " << err.what() << "\n";
        return 1;
    } catch (const InternalError &err) {
        std::cerr << "internal error: " << err.what() << "\n";
        return 3;
    }
}
