/**
 * @file
 * c4cam-run: compile a TorchScript kernel and execute it on the CAM
 * simulator with synthetic data.
 *
 *   c4cam-run kernel.py --arch spec.json [--queries-equal-rows]
 *                       [--seed N] [--print-ir] [--batch N] [--json]
 *                       [--threads N]
 *
 * Generates deterministic +-1 inputs for each tensor parameter, runs
 * the compiled kernel, prints the outputs and the performance report.
 * With --queries-equal-rows, query i is a copy of stored row
 * (2*i mod N) so the expected top-1 indices are obvious.
 *
 * With --batch N the kernel is served through one persistent
 * ExecutionSession: the device is programmed once (setup phase) and N
 * query batches are executed against it, reporting per-query and
 * amortized figures (paper §III-D setup/search split).
 *
 * With --batch N --threads T the batch is served through a
 * core::ServingEngine instead: the programmed device is replicated T
 * times and queries are drained by T worker threads, additionally
 * reporting host qps and p50/p95 serving latency. Per-query simulated
 * cost is identical to the serial session either way.
 *
 * With --batch N --async the batch is served through the asynchronous
 * front-end (core::AsyncServingEngine): submissions flow through a
 * bounded queue (--queue-depth, default 64) with an overflow policy
 * (--policy block|reject|drop-oldest, default block) into dispatcher
 * threads that micro-batch up to --fuse-k queries (default 8) into
 * fused device windows when the queue runs deep. Reports the same
 * figures plus the enqueue-wait vs execute latency split and the
 * admission/fusion counters. Per-query simulated cost stays identical
 * to the serial session here too.
 *
 * With --batch N --trace-out FILE the run additionally records
 * per-query lifecycle spans (support::TraceCollector) through
 * whichever serving path was chosen -- serial session, threaded
 * engine, or async front-end -- and writes the trace document (Chrome
 * trace_event + compact "spans" array) to FILE. Tracing never
 * perturbs outputs or PerfReports.
 *
 * With --batch N --shards M the stored tensor is partitioned across M
 * programmed CAM shards (core::ShardedEngine): each query scatters to
 * every shard and the per-shard top-k lists are merged exactly on the
 * host, bit-identical to one big device. --threads sets the replicas
 * per shard; --async serves the sharded backend through the async
 * front-end.
 *
 * Fault tolerance: --fault-spec FILE attaches a seeded
 * sim::FaultInjector (JSON spec: scripted transient faults, permanent
 * device kills, latency spikes) to every device of the chosen serving
 * path; --fault-rate X adds a uniform transient rate. --retries N
 * bounds per-query re-attempts on transient faults (serving paths
 * only), --deadline-us N sheds queries whose enqueue wait blew the
 * deadline (--async only), and --allow-degraded lets a sharded run
 * answer from surviving shards when a shard is quarantined (results
 * are then marked partial with a coverage fraction). A recovery
 * counter line (and a "recovery" object under "async" in --json)
 * reports retries / deadline sheds / quarantines / degraded serves.
 *
 * Plan-pipeline introspection: --dump-plan[=FILE] disassembles the
 * kernel's compiled (optimized) ExecutionPlan; --plan-opt-debug prints
 * the per-pass before/after bytecode of the rt::PlanOptimizer pipeline
 * on this kernel; --no-plan-opt replays the raw 1:1 plan instead of
 * the optimized one (differential testing, like --tree-walk one level
 * up). Every run reports the process-wide PlanCache counters (text
 * line and "plan_cache" object in --json); with --trace-out, compiles
 * and cache hits additionally appear as plan-compile/plan-cache-hit
 * spans.
 */

#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "arch/ArchSpec.h"
#include "core/AsyncServingEngine.h"
#include "core/Compiler.h"
#include "core/ExecutionSession.h"
#include "core/PlanCache.h"
#include "core/RetryPolicy.h"
#include "core/ServingEngine.h"
#include "core/ShardedEngine.h"
#include "dialects/BuiltinDialect.h"
#include "runtime/ExecutionPlan.h"
#include "runtime/PlanOptimizer.h"
#include "sim/FaultInjector.h"
#include "support/CliParse.h"
#include "support/Error.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/Trace.h"

using namespace c4cam;

namespace {

int
usage()
{
    std::cerr << "usage: c4cam-run <kernel.py|-> [--arch spec.json]"
              << " [--seed N] [--queries-equal-rows] [--print-ir]"
              << " [--host-only] [--batch N] [--json] [--threads N]"
              << " [--tree-walk] [--shards M] [--async]"
              << " [--queue-depth N]"
              << " [--policy block|reject|drop-oldest] [--fuse-k N]"
              << " [--trace-out FILE] [--dump-plan[=FILE]]"
              << " [--plan-opt-debug] [--no-plan-opt]"
              << " [--fusion-model]"
              << " [--fault-spec FILE] [--fault-rate X] [--retries N]"
              << " [--deadline-us N] [--allow-degraded]\n";
    return 2;
}

/** Make query row q a copy of stored row ((offset + 2*q) mod N). */
void
fillQueriesFromStored(const rt::BufferPtr &queries,
                      const rt::BufferPtr &stored, std::int64_t offset)
{
    std::int64_t n = stored->shape()[0];
    for (std::int64_t q = 0; q < queries->shape()[0]; ++q)
        for (std::int64_t c = 0; c < queries->shape()[1]; ++c)
            queries->set({q, c}, stored->at({(offset + 2 * q) % n, c}));
}

void
printOutputs(const std::vector<rt::RtValue> &outputs)
{
    for (std::size_t i = 0; i < outputs.size(); ++i) {
        const rt::RtValue &out = outputs[i];
        if (out.isBuffer())
            std::cout << "output[" << i << "] = " << out.asBuffer()->str()
                      << "\n";
        else if (out.isInt())
            std::cout << "output[" << i << "] = " << out.asInt() << "\n";
        else
            std::cout << "output[" << i << "] = " << out.asFloat() << "\n";
    }
}

/** Process-wide PlanCache counters as a --json sub-object. */
JsonValue
planCacheJson()
{
    core::PlanCacheStats pc = core::PlanCache::instance().stats();
    JsonValue o = JsonValue::makeObject();
    o.set("hits", JsonValue(double(pc.hits)));
    o.set("misses", JsonValue(double(pc.misses)));
    o.set("evictions", JsonValue(double(pc.evictions)));
    o.set("entries", JsonValue(double(pc.entries)));
    return o;
}

void
printPlanCache()
{
    core::PlanCacheStats pc = core::PlanCache::instance().stats();
    std::cout << "plan cache: " << pc.hits << " hits, " << pc.misses
              << " misses, " << pc.evictions << " evictions, "
              << pc.entries << " resident\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input_path;
    std::string arch_path;
    std::uint64_t seed = 42;
    bool queries_equal_rows = false;
    bool print_ir = false;
    bool host_only = false;
    bool json = false;
    bool tree_walk = false;
    bool no_plan_opt = false;
    bool true_fused = false;
    bool dump_plan = false;
    std::string dump_plan_path;
    bool plan_opt_debug = false;
    bool use_async = false;
    bool async_flags_seen = false; // --queue-depth/--policy/--fuse-k
    long long batch = 0;
    long long threads = 1;
    long long shards = 1;
    bool shards_seen = false;
    long long queue_depth = 64;
    long long fuse_k = 8;
    std::string trace_path;
    core::AsyncServingOptions async_options;
    std::string fault_spec_path;
    double fault_rate = 0.0;
    bool fault_rate_seen = false;
    long long retries = 1;
    bool retries_seen = false;
    long long deadline_us = 0;
    bool allow_degraded = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--arch") {
            if (++i >= argc)
                return usage();
            arch_path = argv[i];
        } else if (arg == "--seed") {
            long long value = 0;
            if (++i >= argc || !support::parseInt(argv[i], value))
                return usage();
            seed = static_cast<std::uint64_t>(value);
        } else if (arg == "--batch") {
            if (++i >= argc || !support::parseInt(argv[i], batch, 1))
                return usage();
        } else if (arg == "--threads") {
            if (++i >= argc ||
                !support::parseInt(argv[i], threads, 1, 1024))
                return usage();
        } else if (arg == "--shards") {
            shards_seen = true;
            if (++i >= argc ||
                !support::parseInt(argv[i], shards, 1, 1024))
                return usage();
        } else if (arg == "--async") {
            use_async = true;
        } else if (arg == "--queue-depth") {
            async_flags_seen = true;
            if (++i >= argc ||
                !support::parseInt(argv[i], queue_depth, 1, 1'000'000))
                return usage();
        } else if (arg == "--fuse-k") {
            async_flags_seen = true;
            if (++i >= argc ||
                !support::parseInt(argv[i], fuse_k, 1, 1024))
                return usage();
        } else if (arg == "--policy") {
            async_flags_seen = true;
            if (++i >= argc)
                return usage();
            auto policy = support::parseOverflowPolicy(argv[i]);
            if (!policy)
                return usage();
            async_options.policy = *policy;
        } else if (arg == "--trace-out") {
            if (++i >= argc)
                return usage();
            trace_path = argv[i];
        } else if (arg == "--fault-spec") {
            if (++i >= argc)
                return usage();
            fault_spec_path = argv[i];
        } else if (arg == "--fault-rate") {
            fault_rate_seen = true;
            if (++i >= argc ||
                !support::parseDouble(argv[i], fault_rate, 0.0, 1.0))
                return usage();
        } else if (arg == "--retries") {
            retries_seen = true;
            if (++i >= argc ||
                !support::parseInt(argv[i], retries, 1, 100))
                return usage();
        } else if (arg == "--deadline-us") {
            if (++i >= argc ||
                !support::parseInt(argv[i], deadline_us, 1))
                return usage();
        } else if (arg == "--allow-degraded") {
            allow_degraded = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--queries-equal-rows") {
            queries_equal_rows = true;
        } else if (arg == "--print-ir") {
            print_ir = true;
        } else if (arg == "--host-only") {
            host_only = true;
        } else if (arg == "--tree-walk") {
            // Differential-testing escape hatch: execute through the
            // tree-walking interpreter instead of the compiled
            // execution plan (results must be bit-identical).
            tree_walk = true;
        } else if (arg == "--no-plan-opt") {
            // One level up from --tree-walk: still replay a compiled
            // plan, but the raw transcription, not the optimized one.
            no_plan_opt = true;
        } else if (arg == "--fusion-model") {
            // True fused-search device model: fused windows charge the
            // precharge/drive once per pass instead of re-attributing
            // the exact serial sum (sim::FusionModel::TrueFused).
            true_fused = true;
        } else if (arg == "--dump-plan") {
            dump_plan = true;
        } else if (arg.rfind("--dump-plan=", 0) == 0) {
            dump_plan = true;
            dump_plan_path = arg.substr(std::string("--dump-plan=").size());
            if (dump_plan_path.empty())
                return usage();
        } else if (arg == "--plan-opt-debug") {
            plan_opt_debug = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage();
        } else if (input_path.empty()) {
            input_path = arg;
        } else {
            return usage();
        }
    }
    if (input_path.empty())
        return usage();
    if (threads > 1 && batch <= 0) {
        // Parallel serving only exists for batched serving; silently
        // running the single-shot path would mislead a benchmark.
        std::cerr << "c4cam-run: --threads requires --batch\n";
        return usage();
    }
    if (use_async && batch <= 0) {
        std::cerr << "c4cam-run: --async requires --batch\n";
        return usage();
    }
    if (shards_seen && batch <= 0) {
        // Sharding is a serving-path feature; the single-shot path
        // has no setup/query split to scatter.
        std::cerr << "c4cam-run: --shards requires --batch\n";
        return usage();
    }
    if (!trace_path.empty() && batch <= 0) {
        // Span tracing instruments the serving layers; the single-shot
        // path has no lifecycle to trace.
        std::cerr << "c4cam-run: --trace-out requires --batch\n";
        return usage();
    }
    if (async_flags_seen && !use_async) {
        // Silently taking the synchronous path would let the user
        // draw conclusions about a policy that never ran.
        std::cerr << "c4cam-run: --queue-depth/--policy/--fuse-k "
                     "require --async\n";
        return usage();
    }
    if ((!fault_spec_path.empty() || fault_rate_seen || retries_seen) &&
        batch <= 0) {
        // Fault injection hooks the persistent serving paths; the
        // single-shot path builds its device out of reach.
        std::cerr << "c4cam-run: --fault-spec/--fault-rate/--retries "
                     "require --batch\n";
        return usage();
    }
    if (deadline_us > 0 && !use_async) {
        // Deadlines are an admission-queue feature; a synchronous
        // serve has no enqueue wait to bound.
        std::cerr << "c4cam-run: --deadline-us requires --async\n";
        return usage();
    }
    if (allow_degraded && !shards_seen) {
        // Degraded top-k only means something when there are shards
        // to survive on.
        std::cerr << "c4cam-run: --allow-degraded requires --shards\n";
        return usage();
    }

    try {
        std::string source;
        if (input_path == "-") {
            std::ostringstream oss;
            oss << std::cin.rdbuf();
            source = oss.str();
        } else {
            std::ifstream in(input_path);
            C4CAM_CHECK(in.good(), "cannot open '" << input_path << "'");
            std::ostringstream oss;
            oss << in.rdbuf();
            source = oss.str();
        }

        core::CompilerOptions options;
        if (!arch_path.empty())
            options.spec = arch::ArchSpec::fromFile(arch_path);
        options.hostOnly = host_only;
        options.treeWalkExecution = tree_walk;
        options.optimizePlans = !no_plan_opt;
        options.fusionModel = true_fused ? sim::FusionModel::TrueFused
                                         : sim::FusionModel::ExactSerial;

        // One collector spans compile AND serving, whichever path
        // serves it; created before the kernel so the initial
        // plan-compile (or plan-cache-hit) span lands in the document
        // alongside the query lifecycle spans. The guard detaches the
        // process-wide hook on every exit path.
        std::unique_ptr<support::TraceCollector> collector;
        if (!trace_path.empty())
            collector = std::make_unique<support::TraceCollector>();
        core::PlanCache::instance().setTraceCollector(collector.get());
        struct PlanCacheTraceDetach
        {
            ~PlanCacheTraceDetach()
            {
                core::PlanCache::instance().setTraceCollector(nullptr);
            }
        } plan_cache_trace_detach;
        auto write_trace = [&]() -> bool {
            if (!collector)
                return true;
            if (!collector->writeFile(trace_path)) {
                std::cerr << "c4cam-run: cannot write --trace-out file '"
                          << trace_path << "'\n";
                return false;
            }
            if (!json)
                std::cout << "trace: " << collector->size()
                          << " spans -> " << trace_path << " ("
                          << collector->dropped() << " dropped)\n";
            return true;
        };

        core::Compiler compiler(options);
        core::CompiledKernel kernel = compiler.compileTorchScript(source);

        if (dump_plan) {
            auto plan = kernel.executionPlan();
            C4CAM_CHECK(plan, "--dump-plan: the kernel has no compiled "
                        "plan (tree-walk mode, or the module is outside "
                        "the plan compiler's vocabulary)");
            std::string text = rt::PlanOptimizer::disassemble(*plan);
            if (dump_plan_path.empty()) {
                std::cout << text;
            } else {
                std::ofstream out(dump_plan_path);
                C4CAM_CHECK(out.good(), "cannot write --dump-plan file '"
                            << dump_plan_path << "'");
                out << text;
            }
        }
        if (plan_opt_debug) {
            // Re-derive the raw transcription and re-run the optimizer
            // with snapshots on, so the printed pipeline matches this
            // kernel even when the cached plan skipped the passes.
            auto raw = rt::ExecutionPlan::compile(
                std::as_const(kernel).module(), kernel.entryPoint());
            rt::PlanOptOptions dbg = options.planOpt;
            dbg.collectDumps = true;
            rt::PlanOptReport report;
            rt::PlanOptimizer::optimize(*raw, dbg, &report);
            for (const auto &d : report.passDumps)
                std::cout << "=== " << d.first << " ===\n" << d.second;
            std::cout << "plan-opt: folded " << report.foldedInstructions
                      << ", hoisted " << report.hoistedSubviews
                      << ", fused " << report.fusedSuperops
                      << ", collapsed " << report.collapsedWrites
                      << ", removed " << report.removedInstructions
                      << "; slots " << report.slotsBefore << " -> "
                      << report.slotsAfter << "\n";
        }

        if (print_ir)
            std::cout << std::as_const(kernel).module().str() << "\n";

        // Synthesize +-1 inputs matching the function signature.
        ir::Operation *func =
            std::as_const(kernel).module().lookupFunction(
                kernel.entryPoint());
        ir::Block *body = dialects::funcBody(func);
        std::vector<rt::BufferPtr> args;
        Rng rng(seed);
        for (std::size_t i = 0; i < body->numArguments(); ++i) {
            ir::Type t = body->argument(i)->type();
            C4CAM_CHECK(t.isTensor() && t.rank() == 2,
                        "c4cam-run synthesizes rank-2 tensor args only");
            auto buf = rt::Buffer::alloc(rt::DType::F32, t.shape());
            for (std::int64_t r = 0; r < t.shape()[0]; ++r)
                for (std::int64_t c = 0; c < t.shape()[1]; ++c)
                    buf->set({r, c}, rng.nextBool() ? 1.0 : -1.0);
            args.push_back(buf);
        }
        if (queries_equal_rows && args.size() >= 2)
            fillQueriesFromStored(args[0], args[1], 0);

        if (batch > 0) {
            // Persistent serving: program the device once, then serve
            // `batch` query batches. Each batch gets its own query
            // buffer (fresh content so serving is not a no-op, and no
            // aliasing across concurrent workers);
            // --queries-equal-rows keeps answers obvious. Batches are
            // generated lazily so memory stays O(in-flight queries),
            // never O(batch).
            C4CAM_CHECK(!args.empty(),
                        "--batch requires a kernel with at least one "
                        "tensor parameter (the query)");
            auto make_batch_args = [&](long long b) {
                std::vector<rt::BufferPtr> batch_args = args;
                auto queries = rt::Buffer::alloc(rt::DType::F32,
                                                 args[0]->shape());
                if (queries_equal_rows && args.size() >= 2) {
                    fillQueriesFromStored(queries, args[1], b);
                } else {
                    for (std::int64_t q = 0; q < queries->shape()[0]; ++q)
                        for (std::int64_t c = 0; c < queries->shape()[1];
                             ++c)
                            queries->set({q, c},
                                         rng.nextBool() ? 1.0 : -1.0);
                }
                batch_args[0] = queries;
                return batch_args;
            };

            // Chaos / fault-tolerance knobs, shared by every serving
            // path. One seeded injector instance is attached to every
            // device (master + clones, all shards), so a run is
            // reproducible from the spec's seed alone.
            std::shared_ptr<sim::FaultInjector> injector;
            if (!fault_spec_path.empty() || fault_rate_seen) {
                sim::FaultSpec spec;
                if (!fault_spec_path.empty())
                    spec = sim::FaultSpec::fromFile(fault_spec_path);
                if (fault_rate_seen)
                    spec.transientRate = fault_rate;
                injector = std::make_shared<sim::FaultInjector>(spec);
            }
            core::RetryPolicy retry_policy;
            retry_policy.maxAttempts = static_cast<int>(retries);
            retry_policy.backoffUs = 100;
            const bool chaos =
                injector || deadline_us > 0 || allow_degraded;

            core::ExecutionResult first;
            long long first_index = 0;
            sim::PerfReport total;
            bool persistent = false;
            if (use_async) {
                // Async front-end: bounded submission queue with the
                // chosen overflow policy feeding `threads` replicas;
                // under the default block policy the queue bound IS
                // the submission backpressure, so all batches can be
                // submitted eagerly.
                async_options.queueCapacity =
                    static_cast<std::size_t>(queue_depth);
                async_options.fuseMaxK = static_cast<int>(fuse_k);
                async_options.trace = collector.get();
                async_options.deadlineUs = deadline_us;
                std::unique_ptr<core::AsyncServingEngine> engine;
                if (shards_seen) {
                    // Sharded backend behind the async front-end:
                    // same queue/fusion semantics, every dispatch
                    // scatter-gathers across the shards.
                    core::ShardedEngineOptions sharding;
                    sharding.shards = static_cast<int>(shards);
                    sharding.replicasPerShard =
                        static_cast<int>(threads);
                    sharding.retryPolicy = retry_policy;
                    sharding.faultInjector = injector;
                    sharding.allowDegraded = allow_degraded;
                    engine = std::make_unique<core::AsyncServingEngine>(
                        std::make_unique<core::ShardedEngine>(
                            options, source, args, sharding),
                        async_options);
                } else {
                    engine = kernel.createAsyncServingEngine(
                        args, static_cast<int>(threads), async_options);
                    if (auto *se = dynamic_cast<core::ServingEngine *>(
                            &engine->backend())) {
                        se->setRetryPolicy(retry_policy);
                        if (injector)
                            se->attachFaultInjector(injector);
                    }
                }
                std::deque<std::future<core::ExecutionResult>> inflight;
                long long ok = 0;
                long long front_index = 0; // batch index of the front
                auto harvest_front = [&] {
                    try {
                        core::ExecutionResult done =
                            inflight.front().get();
                        if (ok++ == 0) {
                            // Under load-shedding policies batch 0
                            // itself may have been refused; remember
                            // whose outputs we are about to print.
                            first = std::move(done);
                            first_index = front_index;
                        }
                    } catch (const core::AdmissionError &) {
                        // Only admission refusals (reject policy /
                        // drop-oldest) are expected losses -- the
                        // stats summary reports them. A query that
                        // failed DURING execution rethrows as a plain
                        // CompilerError and aborts the run.
                    }
                    ++front_index;
                    inflight.pop_front();
                };
                for (long long b = 0; b < batch; ++b) {
                    inflight.push_back(
                        engine->submit(make_batch_args(b)));
                    // Keep the harvest loop bounded so rejected-policy
                    // runs do not accumulate `batch` failed futures.
                    if (inflight.size() > 4 * static_cast<std::size_t>(
                                                  queue_depth))
                        harvest_front();
                }
                while (!inflight.empty())
                    harvest_front();
                engine->drain();
                core::AsyncServingStats stats = engine->stats();
                total = stats.serving.aggregate;
                persistent = engine->backend().persistent();
                if (!json) {
                    std::cout
                        << "async serving: "
                        << engine->backend().concurrency()
                        << " backend lanes, queue depth "
                        << stats.queueCapacity << " (policy "
                        << support::toString(async_options.policy)
                        << "), " << stats.serving.qps
                        << " queries/sec host throughput\n"
                        << "latency split: enqueue-wait p50 "
                        << stats.p50EnqueueWaitUs << " us, p95 "
                        << stats.p95EnqueueWaitUs << " us; execute p50 "
                        << stats.p50ExecuteUs << " us, p95 "
                        << stats.p95ExecuteUs << " us\n"
                        << "admission: " << stats.submitted
                        << " submitted, " << stats.completed
                        << " completed, " << stats.rejected
                        << " rejected, " << stats.dropped
                        << " dropped; micro-batching: "
                        << stats.fusedWindows << " fused windows ("
                        << stats.fusedQueries << " queries), "
                        << stats.singleDispatches
                        << " single dispatches\n";
                    if (chaos)
                        std::cout << "recovery: "
                                  << stats.serving.retries
                                  << " retries, " << stats.deadlineSheds
                                  << " deadline sheds, "
                                  << stats.fallbackRetries
                                  << " fallback re-serves, "
                                  << stats.serving.quarantines
                                  << " quarantines, "
                                  << stats.serving.degradedServes
                                  << " degraded serves\n";
                    if (persistent)
                        std::cout << "setup: "
                                  << engine->backend().setupReport()
                                         .str()
                                  << "\n";
                }
                if (ok == 0) {
                    std::cerr << "c4cam-run: every submission was "
                                 "refused (policy "
                              << support::toString(async_options.policy)
                              << ")\n";
                    return 1;
                }
                if (json) {
                    // Machine consumers monitoring load shedding need
                    // the admission/fusion counters, not just the
                    // simulated aggregate the text mode also prints.
                    JsonValue j = total.toJson();
                    JsonValue a = JsonValue::makeObject();
                    a.set("replicas",
                          JsonValue(double(
                              engine->backend().concurrency())));
                    a.set("queue_capacity",
                          JsonValue(double(stats.queueCapacity)));
                    a.set("policy",
                          JsonValue(std::string(
                              support::toString(async_options.policy))));
                    a.set("submitted",
                          JsonValue(double(stats.submitted)));
                    a.set("completed",
                          JsonValue(double(stats.completed)));
                    a.set("rejected", JsonValue(double(stats.rejected)));
                    a.set("dropped", JsonValue(double(stats.dropped)));
                    a.set("fused_windows",
                          JsonValue(double(stats.fusedWindows)));
                    a.set("fused_queries",
                          JsonValue(double(stats.fusedQueries)));
                    a.set("single_dispatches",
                          JsonValue(double(stats.singleDispatches)));
                    a.set("qps", JsonValue(stats.serving.qps));
                    a.set("p50_enqueue_wait_us",
                          JsonValue(stats.p50EnqueueWaitUs));
                    a.set("p95_enqueue_wait_us",
                          JsonValue(stats.p95EnqueueWaitUs));
                    a.set("p50_execute_us",
                          JsonValue(stats.p50ExecuteUs));
                    a.set("p95_execute_us",
                          JsonValue(stats.p95ExecuteUs));
                    if (chaos) {
                        JsonValue r = JsonValue::makeObject();
                        r.set("retries",
                              JsonValue(double(stats.serving.retries)));
                        r.set("deadline_sheds",
                              JsonValue(double(stats.deadlineSheds)));
                        r.set("fallback_retries",
                              JsonValue(double(stats.fallbackRetries)));
                        r.set("quarantines",
                              JsonValue(
                                  double(stats.serving.quarantines)));
                        r.set("degraded_serves",
                              JsonValue(
                                  double(stats.serving.degradedServes)));
                        a.set("recovery", std::move(r));
                    }
                    j.set("async", std::move(a));
                    j.set("plan_cache", planCacheJson());
                    std::cout << j.dump(2) << "\n";
                    return write_trace() ? 0 : 1;
                }
            } else if (shards_seen) {
                // Scatter-gather serving across `shards` programmed
                // CAM shards; outputs (incl. global indices) are
                // bit-identical to one big device. --threads sets the
                // replicas per shard.
                core::ShardedEngineOptions sharding;
                sharding.shards = static_cast<int>(shards);
                sharding.replicasPerShard = static_cast<int>(threads);
                sharding.retryPolicy = retry_policy;
                sharding.faultInjector = injector;
                sharding.allowDegraded = allow_degraded;
                core::ShardedEngine engine(options, source, args,
                                           sharding);
                if (collector)
                    engine.enableTracing(collector.get());
                for (long long b = 0; b < batch; ++b) {
                    core::ExecutionResult result =
                        engine.serve(make_batch_args(b));
                    if (b == 0)
                        first = std::move(result);
                }
                core::ServingStats stats = engine.stats();
                total = stats.aggregate;
                persistent = engine.persistent();
                if (!json) {
                    std::cout << "sharded serving: "
                              << engine.numShards() << " shards x "
                              << threads << " replicas (top-"
                              << engine.topK() << " merge), "
                              << stats.qps
                              << " queries/sec host throughput, p50 "
                              << stats.p50LatencyUs << " us, p95 "
                              << stats.p95LatencyUs << " us\n";
                    if (chaos)
                        std::cout << "recovery: " << stats.retries
                                  << " retries, " << stats.quarantines
                                  << " quarantines, "
                                  << stats.degradedServes
                                  << " degraded serves\n";
                    if (persistent)
                        std::cout << "setup: "
                                  << engine.setupReport().str() << "\n";
                }
            } else if (threads > 1) {
                // Parallel serving on `threads` programmed replicas;
                // at most 2x threads submissions stay in flight.
                auto engine = kernel.createServingEngine(
                    args, static_cast<int>(threads));
                engine->setRetryPolicy(retry_policy);
                if (injector)
                    engine->attachFaultInjector(injector);
                if (collector)
                    engine->enableTracing(collector.get());
                std::deque<std::future<core::ExecutionResult>> inflight;
                long long harvested = 0; // futures drain in FIFO order
                auto harvest_front = [&] {
                    core::ExecutionResult done = inflight.front().get();
                    inflight.pop_front();
                    if (harvested++ == 0)
                        first = std::move(done);
                };
                for (long long b = 0; b < batch; ++b) {
                    inflight.push_back(
                        engine->submit(make_batch_args(b)));
                    if (inflight.size() >
                        static_cast<std::size_t>(2 * threads))
                        harvest_front();
                }
                while (!inflight.empty())
                    harvest_front();
                core::ServingStats stats = engine->stats();
                total = stats.aggregate;
                persistent = engine->persistent();
                if (!json) {
                    std::cout << "serving: " << engine->numReplicas()
                              << " replicas, " << stats.qps
                              << " queries/sec host throughput, p50 "
                              << stats.p50LatencyUs << " us, p95 "
                              << stats.p95LatencyUs << " us\n";
                    if (chaos)
                        std::cout << "recovery: " << stats.retries
                                  << " retries\n";
                    if (persistent)
                        std::cout << "setup: "
                                  << engine->setupReport().str() << "\n";
                }
            } else {
                // Serial path: one reused session, one batch at a time.
                // Faults fire here too (reproducing an injected fault
                // serially is the debugging workflow), but there is no
                // retry layer: the first fault aborts the run.
                core::ExecutionSession session = kernel.createSession(args);
                if (injector && session.device())
                    session.device()->attachFaultInjector(injector);
                if (collector)
                    session.enableTracing(collector.get());
                for (long long b = 0; b < batch; ++b) {
                    core::ExecutionResult result =
                        session.runQuery(make_batch_args(b));
                    if (b == 0)
                        first = std::move(result);
                }
                total = session.aggregateReport();
                persistent = session.persistent();
                if (!json && persistent)
                    std::cout << "setup: " << session.setupReport().str()
                              << "\n";
            }
            if (!write_trace())
                return 1;
            if (json) {
                JsonValue j = total.toJson();
                j.set("plan_cache", planCacheJson());
                std::cout << j.dump(2) << "\n";
                return 0;
            }
            std::cout << "batch " << first_index << " outputs:\n";
            printOutputs(first.outputs);
            std::cout << "aggregate: " << total.str() << "\n";
            std::cout << "amortized: " << total.amortizedLatencyNs()
                      << " ns/query, " << total.amortizedEnergyPj()
                      << " pJ/query over " << total.queriesServed
                      << " queries\n";
            printPlanCache();
            return 0;
        }

        core::ExecutionResult result = kernel.run(args);

        if (json) {
            JsonValue j = result.perf.toJson();
            j.set("plan_cache", planCacheJson());
            std::cout << j.dump(2) << "\n";
            return 0;
        }
        printOutputs(result.outputs);
        if (!host_only) {
            std::cout << "perf: " << result.perf.str() << "\n";
            const auto &plan = kernel.plan();
            std::cout << "mapping: " << plan.logicalTiles << " tiles -> "
                      << plan.physicalSubarrays << " subarrays, "
                      << plan.banks << " banks, "
                      << plan.batchesPerSubarray
                      << " batches/subarray\n";
        }
        printPlanCache();
        return 0;
    } catch (const CompilerError &err) {
        std::cerr << "error: " << err.what() << "\n";
        return 1;
    } catch (const InternalError &err) {
        std::cerr << "internal error: " << err.what() << "\n";
        return 3;
    }
}
