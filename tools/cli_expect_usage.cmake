# Test helper: run a CLI invocation that must be rejected with the
# usage message AND exit code 2. CTest's PASS_REGULAR_EXPRESSION alone
# ignores the exit code, which would let a crash-after-usage (or a
# usage() that stopped returning 2) slip through -- so the contract is
# asserted here explicitly.
#
# Usage:
#   cmake -DTOOL=<path> "-DARGS=<;-separated args>" -P cli_expect_usage.cmake

separate_arguments(tool_args UNIX_COMMAND "${ARGS}")
execute_process(COMMAND ${TOOL} ${tool_args}
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR
          "expected exit code 2 from '${TOOL} ${ARGS}', got '${rc}' "
          "(stderr: ${err})")
endif()
if(NOT err MATCHES "usage: c4cam-run" AND NOT out MATCHES "usage: c4cam-run")
  message(FATAL_ERROR
          "expected the usage message from '${TOOL} ${ARGS}', got "
          "stdout '${out}' / stderr '${err}'")
endif()
