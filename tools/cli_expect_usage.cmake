# Test helper: run a CLI invocation that must be rejected with the
# usage message AND exit code 2. CTest's PASS_REGULAR_EXPRESSION alone
# ignores the exit code, which would let a crash-after-usage (or a
# usage() that stopped returning 2) slip through -- so the contract is
# asserted here explicitly.
#
# Usage:
#   cmake -DTOOL=<path> "-DARGS=<;-separated args>"
#         [-DUSAGE_RE=<regex>] -P cli_expect_usage.cmake
#
# USAGE_RE defaults to c4cam-run's usage banner; other tools (e.g.
# c4cam-trace-check, the benches) pass their own.

if(NOT DEFINED USAGE_RE)
  set(USAGE_RE "usage: c4cam-run")
endif()

separate_arguments(tool_args UNIX_COMMAND "${ARGS}")
execute_process(COMMAND ${TOOL} ${tool_args}
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR
          "expected exit code 2 from '${TOOL} ${ARGS}', got '${rc}' "
          "(stderr: ${err})")
endif()
if(NOT err MATCHES "${USAGE_RE}" AND NOT out MATCHES "${USAGE_RE}")
  message(FATAL_ERROR
          "expected usage matching '${USAGE_RE}' from '${TOOL} ${ARGS}', "
          "got stdout '${out}' / stderr '${err}'")
endif()
