# Test helper: produce a trace with c4cam-run --trace-out, then
# validate it with c4cam-trace-check -- the same checker CI runs on
# archived traces. Asserts the producing run succeeds, the file
# appears, and the checker accepts it.
#
# Usage:
#   cmake -DTOOL=<c4cam-run> "-DARGS=<;-separated args>"
#         -DCHECKER=<c4cam-trace-check> -DTRACE_FILE=<path>
#         [-DMIN_SPANS=N] -P cli_trace_roundtrip.cmake

if(NOT DEFINED MIN_SPANS)
  set(MIN_SPANS 1)
endif()

file(REMOVE "${TRACE_FILE}")
separate_arguments(tool_args UNIX_COMMAND "${ARGS}")
execute_process(COMMAND ${TOOL} ${tool_args}
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "trace-producing run '${TOOL} ${ARGS}' failed with '${rc}' "
          "(stderr: ${err})")
endif()
if(NOT EXISTS "${TRACE_FILE}")
  message(FATAL_ERROR
          "'${TOOL} ${ARGS}' succeeded but did not write ${TRACE_FILE}")
endif()

execute_process(COMMAND ${CHECKER} "${TRACE_FILE}" --min-spans ${MIN_SPANS}
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "c4cam-trace-check rejected ${TRACE_FILE} (exit '${rc}', "
          "stderr: ${err}, stdout: ${out})")
endif()
