# Test helper: the sharded serving CLI must be bit-identical to the
# unsharded run. Runs `TOOL ARGS` once without --shards as the
# reference, then once per entry of SHARDS; every run's printed
# `output[...]` lines (the first query batch's values and indices)
# must match the reference exactly. Catches any shard-count-dependent
# divergence -- merge order, index remapping, k truncation -- at the
# user-facing surface.
#
# Usage:
#   cmake -DTOOL=<c4cam-run> "-DARGS=<;-separated args>"
#         "-DSHARDS=1;2;4" -P cli_shard_identity.cmake

function(run_and_extract_outputs result_var)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "'${ARGN}' failed with '${rc}' (stderr: ${err})")
  endif()
  string(REGEX MATCHALL "output\\[[^\n]*" lines "${out}")
  if(lines STREQUAL "")
    message(FATAL_ERROR
            "'${ARGN}' printed no output[...] lines to compare "
            "(stdout: ${out})")
  endif()
  set(${result_var} "${lines}" PARENT_SCOPE)
endfunction()

separate_arguments(tool_args UNIX_COMMAND "${ARGS}")
run_and_extract_outputs(reference ${TOOL} ${tool_args})

foreach(m IN LISTS SHARDS)
  run_and_extract_outputs(sharded ${TOOL} ${tool_args} --shards ${m})
  if(NOT sharded STREQUAL reference)
    message(FATAL_ERROR
            "--shards ${m} outputs diverge from the unsharded run:\n"
            "unsharded: ${reference}\n"
            "--shards ${m}: ${sharded}")
  endif()
endforeach()
