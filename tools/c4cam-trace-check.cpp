/**
 * @file
 * c4cam-trace-check: validate a trace document written by
 * `c4cam-run --trace-out` / TraceCollector::writeFile.
 *
 *   c4cam-trace-check TRACE.json [--min-spans N]
 *
 * Reuses the same support::Json parser the producer used, then checks
 * the c4cam-trace-v1 shape: a "spans" array whose entries carry
 * name/trace/query/span/parent ids and a non-negative wall-clock
 * interval, a "traceEvents" array of Chrome "X" events of the same
 * length, every non-root parent id resolving to another span of the
 * same query's trace, and a non-negative "dropped" counter. CI runs
 * this against the smoke-test trace so a malformed export fails the
 * build rather than silently producing a file chrome://tracing
 * rejects.
 *
 * Sharded-serving spans get structural checks of their own (complete
 * traces only): every "scatter" span pairs with exactly one
 * "shard-merge" sibling under the same parent, the pair tiles the
 * scatter+merge interval (merge starts where scatter ends -- the
 * producer records both from one shared clock read, so any gap or
 * overlap is a bug, modulo JSON round-trip epsilon), and both stay
 * inside the parent span's interval.
 *
 * Fault-tolerance spans too: "retry" and "degraded" are zero-duration
 * markers on a query's critical path and must parent under another
 * span; "shard-quarantine" is an engine-level state transition and
 * must be a self-rooted (parent 0) zero-duration marker.
 *
 * Exit codes: 0 trace is valid, 1 invalid or unreadable, 2 usage.
 */

#include <cmath>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "support/CliParse.h"
#include "support/Error.h"
#include "support/Json.h"

using namespace c4cam;

namespace {

int
usage()
{
    std::cerr << "usage: c4cam-trace-check TRACE.json [--min-spans N]\n";
    return 2;
}

int
fail(const std::string &message)
{
    std::cerr << "c4cam-trace-check: " << message << "\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    long long min_spans = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--min-spans") {
            if (++i >= argc || !support::parseInt(argv[i], min_spans))
                return usage();
        } else if (arg == "--help" || arg == "-h") {
            return usage();
        } else if (path.empty()) {
            path = arg;
        } else {
            return usage();
        }
    }
    if (path.empty())
        return usage();

    try {
        JsonValue doc = parseJsonFile(path);
        if (doc.getString("schema", "") != "c4cam-trace-v1")
            return fail("missing or unexpected \"schema\" (want "
                        "c4cam-trace-v1)");
        if (doc.getInt("dropped", -1) < 0)
            return fail("missing or negative \"dropped\" counter");

        const JsonValue *spans_value = doc.find("spans");
        if (!spans_value)
            return fail("missing \"spans\" array");
        const auto &spans = spans_value->asArray();
        if (static_cast<long long>(spans.size()) < min_spans)
            return fail("only " + std::to_string(spans.size()) +
                        " spans, expected at least " +
                        std::to_string(min_spans));

        // First pass: ids + intervals; keep a flat record per span so
        // parents and the sharded-serving structure can be resolved
        // in later passes.
        struct SpanRec
        {
            std::string name;
            long long trace = 0;
            long long query = 0;
            long long span = 0;
            long long parent = 0;
            double start = 0.0;
            double dur = 0.0;
        };
        std::vector<SpanRec> recs;
        recs.reserve(spans.size());
        std::set<std::pair<long long, long long>> span_ids;
        for (std::size_t i = 0; i < spans.size(); ++i) {
            const JsonValue &span = spans[i];
            const std::string at = "spans[" + std::to_string(i) + "]";
            if (span.getString("name", "").empty())
                return fail(at + ": missing \"name\"");
            if (span.getInt("trace", 0) <= 0)
                return fail(at + ": missing or non-positive \"trace\"");
            if (span.getInt("span", 0) <= 0)
                return fail(at + ": missing or non-positive \"span\"");
            if (span.getInt("parent", -1) < 0 ||
                span.getInt("query", -1) < 0)
                return fail(at + ": missing \"parent\" or \"query\"");
            const JsonValue *start = span.find("start_us");
            const JsonValue *dur = span.find("dur_us");
            if (!start || !dur)
                return fail(at + ": missing \"start_us\"/\"dur_us\"");
            if (start->asNumber() < 0.0 || dur->asNumber() < 0.0)
                return fail(at + ": negative wall-clock interval");
            const JsonValue *sim = span.find("sim");
            if (sim && sim->find("query_latency_ns") == nullptr)
                return fail(at + ": \"sim\" block lacks "
                                 "\"query_latency_ns\"");
            SpanRec rec;
            rec.name = span.getString("name", "");
            rec.trace = span.getInt("trace", 0);
            rec.query = span.getInt("query", 0);
            rec.span = span.getInt("span", 0);
            rec.parent = span.getInt("parent", 0);
            rec.start = start->asNumber();
            rec.dur = dur->asNumber();
            span_ids.emplace(rec.trace, rec.span);
            // Fault-tolerance markers have a fixed shape regardless
            // of trace completeness: zero duration, and
            // shard-quarantine self-rooted vs retry/degraded always
            // parented (parent RESOLUTION is the complete-trace check
            // below; a non-zero parent id must exist even on an
            // overflowed ring).
            if (rec.name == "retry" || rec.name == "degraded" ||
                rec.name == "shard-quarantine") {
                if (rec.dur != 0.0)
                    return fail(at + ": \"" + rec.name +
                                "\" marker has non-zero duration");
                if (rec.name == "shard-quarantine" && rec.parent != 0)
                    return fail(at + ": \"shard-quarantine\" must be "
                                     "self-rooted (parent 0)");
                if (rec.name != "shard-quarantine" && rec.parent == 0)
                    return fail(at + ": \"" + rec.name +
                                "\" marker must parent under a span "
                                "of its query");
            }
            recs.push_back(std::move(rec));
        }
        // Parent resolution only holds on a complete trace: once the
        // ring overflowed, a surviving child may reference an evicted
        // parent, which is fine.
        if (doc.getInt("dropped", 0) == 0) {
            for (std::size_t i = 0; i < recs.size(); ++i) {
                if (recs[i].parent == 0)
                    continue; // root
                if (!span_ids.count({recs[i].trace, recs[i].parent}))
                    return fail("spans[" + std::to_string(i) +
                                "]: parent " +
                                std::to_string(recs[i].parent) +
                                " does not resolve to a span of the "
                                "same trace");
            }

            // Sharded-serving structure. The producer records the
            // scatter end and the shard-merge start from ONE clock
            // read, so the pair must tile exactly; the epsilon only
            // absorbs the double -> JSON -> double round-trip.
            const double eps = 1e-3; // us
            std::map<std::pair<long long, long long>, const SpanRec *>
                by_id;
            for (const SpanRec &rec : recs)
                by_id[{rec.trace, rec.span}] = &rec;
            using QueryKey = std::tuple<long long, long long, long long>;
            std::map<QueryKey, std::vector<const SpanRec *>> scatters;
            std::map<QueryKey, std::vector<const SpanRec *>> merges;
            for (const SpanRec &rec : recs) {
                QueryKey key{rec.trace, rec.query, rec.parent};
                if (rec.name == "scatter")
                    scatters[key].push_back(&rec);
                else if (rec.name == "shard-merge")
                    merges[key].push_back(&rec);
            }
            for (const auto &[key, ms] : merges)
                if (!scatters.count(key))
                    return fail("shard-merge span without a scatter "
                                "sibling (query " +
                                std::to_string(std::get<1>(key)) + ")");
            for (const auto &[key, sc] : scatters) {
                const std::string at =
                    "query " + std::to_string(std::get<1>(key));
                auto it = merges.find(key);
                if (it == merges.end())
                    return fail(at + ": scatter span without a "
                                     "shard-merge sibling");
                if (sc.size() != 1 || it->second.size() != 1)
                    return fail(at + ": expected exactly one scatter + "
                                     "shard-merge pair per dispatch, "
                                     "got " +
                                std::to_string(sc.size()) + "+" +
                                std::to_string(it->second.size()));
                const SpanRec &scatter = *sc.front();
                const SpanRec &merge = *it->second.front();
                double scatter_end = scatter.start + scatter.dur;
                if (std::abs(merge.start - scatter_end) > eps)
                    return fail(at + ": shard-merge does not tile with "
                                     "scatter (scatter ends at " +
                                std::to_string(scatter_end) +
                                " us, merge starts at " +
                                std::to_string(merge.start) + " us)");
                if (scatter_end > merge.start + eps)
                    return fail(at + ": scatter overlaps shard-merge");
                // The shards' execute/merge spans parent under the
                // scatter span; all shard work must be over before
                // the host merge starts.
                for (const SpanRec &child : recs)
                    if (child.trace == scatter.trace &&
                        child.parent == scatter.span &&
                        child.start + child.dur > merge.start + eps)
                        return fail(at + ": shard span \"" +
                                    child.name +
                                    "\" overlaps the shard-merge");
                auto parent =
                    by_id.find({scatter.trace, scatter.parent});
                if (parent != by_id.end()) {
                    const SpanRec &p = *parent->second;
                    double merge_end = merge.start + merge.dur;
                    double p_end = p.start + p.dur;
                    if (scatter.start < p.start - eps ||
                        merge_end > p_end + eps)
                        return fail(at + ": scatter/shard-merge "
                                         "escape their parent span");
                    // A root recorded by the sharded engine itself
                    // shares its end points with the pair: the two
                    // children tile it completely.
                    if (p.name == "query" &&
                        (std::abs(scatter.start - p.start) > eps ||
                         std::abs(merge_end - p_end) > eps))
                        return fail(at + ": scatter + shard-merge do "
                                         "not tile their root query "
                                         "span");
                }
            }
        }

        const JsonValue *chrome_value = doc.find("traceEvents");
        if (!chrome_value)
            return fail("missing \"traceEvents\" array");
        const auto &chrome = chrome_value->asArray();
        if (chrome.size() != spans.size())
            return fail("traceEvents/spans length mismatch (" +
                        std::to_string(chrome.size()) + " vs " +
                        std::to_string(spans.size()) + ")");
        for (std::size_t i = 0; i < chrome.size(); ++i) {
            const JsonValue &ev = chrome[i];
            if (ev.getString("ph", "") != "X")
                return fail("traceEvents[" + std::to_string(i) +
                            "]: phase is not \"X\"");
            if (!ev.find("ts") || !ev.find("dur") || !ev.find("tid"))
                return fail("traceEvents[" + std::to_string(i) +
                            "]: missing ts/dur/tid");
        }

        std::cout << "c4cam-trace-check: " << spans.size()
                  << " spans OK (" << doc.getInt("dropped", 0)
                  << " dropped)\n";
        return 0;
    } catch (const CompilerError &err) {
        return fail(err.what());
    }
}
