/**
 * @file
 * c4cam-trace-check: validate a trace document written by
 * `c4cam-run --trace-out` / TraceCollector::writeFile.
 *
 *   c4cam-trace-check TRACE.json [--min-spans N]
 *
 * Reuses the same support::Json parser the producer used, then checks
 * the c4cam-trace-v1 shape: a "spans" array whose entries carry
 * name/trace/query/span/parent ids and a non-negative wall-clock
 * interval, a "traceEvents" array of Chrome "X" events of the same
 * length, every non-root parent id resolving to another span of the
 * same query's trace, and a non-negative "dropped" counter. CI runs
 * this against the smoke-test trace so a malformed export fails the
 * build rather than silently producing a file chrome://tracing
 * rejects.
 *
 * Exit codes: 0 trace is valid, 1 invalid or unreadable, 2 usage.
 */

#include <cstring>
#include <iostream>
#include <set>
#include <string>

#include "support/Error.h"
#include "support/Json.h"

using namespace c4cam;

namespace {

int
usage()
{
    std::cerr << "usage: c4cam-trace-check TRACE.json [--min-spans N]\n";
    return 2;
}

int
fail(const std::string &message)
{
    std::cerr << "c4cam-trace-check: " << message << "\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    long long min_spans = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--min-spans") {
            if (++i >= argc)
                return usage();
            char *end = nullptr;
            min_spans = std::strtoll(argv[i], &end, 10);
            if (end == argv[i] || *end != '\0' || min_spans < 0)
                return usage();
        } else if (arg == "--help" || arg == "-h") {
            return usage();
        } else if (path.empty()) {
            path = arg;
        } else {
            return usage();
        }
    }
    if (path.empty())
        return usage();

    try {
        JsonValue doc = parseJsonFile(path);
        if (doc.getString("schema", "") != "c4cam-trace-v1")
            return fail("missing or unexpected \"schema\" (want "
                        "c4cam-trace-v1)");
        if (doc.getInt("dropped", -1) < 0)
            return fail("missing or negative \"dropped\" counter");

        const JsonValue *spans_value = doc.find("spans");
        if (!spans_value)
            return fail("missing \"spans\" array");
        const auto &spans = spans_value->asArray();
        if (static_cast<long long>(spans.size()) < min_spans)
            return fail("only " + std::to_string(spans.size()) +
                        " spans, expected at least " +
                        std::to_string(min_spans));

        // First pass: ids + intervals; collect span ids per trace so
        // parents can be resolved in a second pass.
        std::set<std::pair<long long, long long>> span_ids;
        for (std::size_t i = 0; i < spans.size(); ++i) {
            const JsonValue &span = spans[i];
            const std::string at = "spans[" + std::to_string(i) + "]";
            if (span.getString("name", "").empty())
                return fail(at + ": missing \"name\"");
            if (span.getInt("trace", 0) <= 0)
                return fail(at + ": missing or non-positive \"trace\"");
            if (span.getInt("span", 0) <= 0)
                return fail(at + ": missing or non-positive \"span\"");
            if (span.getInt("parent", -1) < 0 ||
                span.getInt("query", -1) < 0)
                return fail(at + ": missing \"parent\" or \"query\"");
            const JsonValue *start = span.find("start_us");
            const JsonValue *dur = span.find("dur_us");
            if (!start || !dur)
                return fail(at + ": missing \"start_us\"/\"dur_us\"");
            if (start->asNumber() < 0.0 || dur->asNumber() < 0.0)
                return fail(at + ": negative wall-clock interval");
            const JsonValue *sim = span.find("sim");
            if (sim && sim->find("query_latency_ns") == nullptr)
                return fail(at + ": \"sim\" block lacks "
                                 "\"query_latency_ns\"");
            span_ids.emplace(span.getInt("trace", 0),
                             span.getInt("span", 0));
        }
        // Parent resolution only holds on a complete trace: once the
        // ring overflowed, a surviving child may reference an evicted
        // parent, which is fine.
        if (doc.getInt("dropped", 0) == 0) {
            for (std::size_t i = 0; i < spans.size(); ++i) {
                long long parent = spans[i].getInt("parent", 0);
                if (parent == 0)
                    continue; // root
                if (!span_ids.count(
                        {spans[i].getInt("trace", 0), parent}))
                    return fail("spans[" + std::to_string(i) +
                                "]: parent " + std::to_string(parent) +
                                " does not resolve to a span of the "
                                "same trace");
            }
        }

        const JsonValue *chrome_value = doc.find("traceEvents");
        if (!chrome_value)
            return fail("missing \"traceEvents\" array");
        const auto &chrome = chrome_value->asArray();
        if (chrome.size() != spans.size())
            return fail("traceEvents/spans length mismatch (" +
                        std::to_string(chrome.size()) + " vs " +
                        std::to_string(spans.size()) + ")");
        for (std::size_t i = 0; i < chrome.size(); ++i) {
            const JsonValue &ev = chrome[i];
            if (ev.getString("ph", "") != "X")
                return fail("traceEvents[" + std::to_string(i) +
                            "]: phase is not \"X\"");
            if (!ev.find("ts") || !ev.find("dur") || !ev.find("tid"))
                return fail("traceEvents[" + std::to_string(i) +
                            "]: missing ts/dur/tid");
        }

        std::cout << "c4cam-trace-check: " << spans.size()
                  << " spans OK (" << doc.getInt("dropped", 0)
                  << " dropped)\n";
        return 0;
    } catch (const CompilerError &err) {
        return fail(err.what());
    }
}
