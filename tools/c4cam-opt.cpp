/**
 * @file
 * c4cam-opt: mlir-opt-style pass driver.
 *
 * Reads a module (generic IR syntax, or TorchScript with --torchscript)
 * from a file or stdin, applies the requested passes in order, and
 * prints the resulting IR to stdout.
 *
 *   c4cam-opt kernel.py --torchscript \
 *       --torch-to-cim --cim-fuse-ops --cim-similarity-match \
 *       --cam-map --canonicalize --arch spec.json
 *
 * Passes: --torch-to-cim --cim-fuse-ops --cim-similarity-match
 *         --cim-partition --cam-map --cam-power-opt --cam-latency-opt
 *         --canonicalize --full-pipeline
 * Options: --arch <spec.json>   architecture for partition/map
 *          --torchscript        input is TorchScript, not IR
 *          --verify-each        verify after every pass (default on)
 *          --timing             print per-pass wall-clock
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/ArchSpec.h"
#include "dialects/AllDialects.h"
#include "frontend/TorchScriptFrontend.h"
#include "ir/Parser.h"
#include "ir/Pass.h"
#include "ir/Verifier.h"
#include "passes/CamMapping.h"
#include "passes/CamOptimization.h"
#include "passes/Canonicalize.h"
#include "passes/CimFuseOps.h"
#include "passes/CimPartition.h"
#include "passes/CimSimilarityMatching.h"
#include "passes/TorchToCim.h"
#include "support/Error.h"

using namespace c4cam;

namespace {

std::string
readInput(const std::string &path)
{
    if (path == "-") {
        std::ostringstream oss;
        oss << std::cin.rdbuf();
        return oss.str();
    }
    std::ifstream in(path);
    C4CAM_CHECK(in.good(), "cannot open input file '" << path << "'");
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

int
usage()
{
    std::cerr
        << "usage: c4cam-opt <input|-> [--torchscript] [--arch spec.json]"
        << " [passes...]\n"
        << "passes: --torch-to-cim --cim-fuse-ops"
        << " --cim-similarity-match --cim-partition --cam-map\n"
        << "        --cam-power-opt --cam-latency-opt --canonicalize"
        << " --full-pipeline\n"
        << "options: --no-verify --timing\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input_path;
    std::string arch_path;
    bool torchscript = false;
    bool verify = true;
    bool timing = false;
    std::vector<std::string> pass_names;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--torchscript") {
            torchscript = true;
        } else if (arg == "--arch") {
            if (++i >= argc)
                return usage();
            arch_path = argv[i];
        } else if (arg == "--no-verify") {
            verify = false;
        } else if (arg == "--timing") {
            timing = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage();
        } else if (arg.rfind("--", 0) == 0) {
            pass_names.push_back(arg.substr(2));
        } else if (input_path.empty()) {
            input_path = arg;
        } else {
            return usage();
        }
    }
    if (input_path.empty())
        return usage();

    try {
        arch::ArchSpec spec;
        if (!arch_path.empty())
            spec = arch::ArchSpec::fromFile(arch_path);

        ir::Context ctx;
        dialects::loadAllDialects(ctx);

        std::string text = readInput(input_path);
        ir::Module module =
            torchscript ? frontend::parseTorchScriptModule(ctx, text)
                        : ir::parseModule(ctx, text);
        ir::verifyModule(module);

        ir::PassManager pm;
        pm.enableVerifier(verify);
        pm.enableTiming(timing);
        for (const std::string &name : pass_names) {
            if (name == "torch-to-cim") {
                pm.add<passes::TorchToCimPass>();
            } else if (name == "cim-fuse-ops") {
                pm.add<passes::CimFuseOpsPass>();
            } else if (name == "cim-similarity-match") {
                pm.add<passes::CimSimilarityMatchingPass>();
            } else if (name == "cim-partition") {
                pm.add<passes::CimPartitionPass>(spec);
            } else if (name == "cam-map") {
                pm.add<passes::CamMappingPass>(spec);
            } else if (name == "cam-power-opt") {
                pm.add<passes::CamPowerOptPass>();
            } else if (name == "cam-latency-opt") {
                pm.add<passes::CamLatencyOptPass>();
            } else if (name == "canonicalize") {
                pm.add<passes::CanonicalizePass>();
            } else if (name == "full-pipeline") {
                pm.add<passes::TorchToCimPass>();
                pm.add<passes::CimFuseOpsPass>();
                pm.add<passes::CimSimilarityMatchingPass>();
                pm.add<passes::CamMappingPass>(spec);
                pm.add<passes::CanonicalizePass>();
            } else {
                std::cerr << "unknown pass '--" << name << "'\n";
                return usage();
            }
        }
        pm.run(module);

        if (timing) {
            for (const auto &t : pm.timings())
                std::cerr << "  " << t.pass << ": " << t.millis
                          << " ms\n";
        }
        std::cout << module.str();
        return 0;
    } catch (const CompilerError &err) {
        std::cerr << "error: " << err.what() << "\n";
        return 1;
    } catch (const InternalError &err) {
        std::cerr << "internal error: " << err.what() << "\n";
        return 3;
    }
}
